// Package spec is the paper's formal specification, executable.
//
// The specification's abstract state is tiny:
//
//	TYPE Mutex     = Thread INITIALLY NIL
//	TYPE Condition = SET OF Thread INITIALLY {}
//	TYPE Semaphore = (available, unavailable) INITIALLY available
//	VAR  alerts    : SET OF Thread INITIALLY {}
//
// State holds any number of each. Each ATOMIC PROCEDURE and ATOMIC ACTION
// of the interface is an Action value with three faces:
//
//   - Requires(s): the REQUIRES clause — a caller obligation; a false
//     Requires in a trace is a bug in the *client* (or, during conformance
//     checking, evidence the implementation let a client do the impossible).
//   - When(s): the WHEN clause — an enabling condition; the action cannot
//     take effect until it holds, and a scheduler (or model checker) only
//     fires enabled actions.
//   - Apply(s): the ENSURES clause as a state transformer, with any
//     non-deterministic choice (which threads a Signal removes, whether an
//     overlapping AlertP returns or raises) resolved by explicit fields on
//     the action value.
//
// For model checking, Outcomes(s) enumerates every allowed resolution of
// the non-determinism, so the checker explores all behaviors the
// specification admits.
//
// Variants: the package encodes three historical versions of the AlertWait
// specification (VariantFinal, VariantNoMNil, VariantUnchangedC) so the
// model checker can rediscover both published specification bugs — see
// experiment E7 in EXPERIMENTS.md and the paper's Discussion section.
package spec

import (
	"fmt"
	"sort"
	"strings"
)

// ThreadID names a thread in the abstract state. NIL (0) is not a thread:
// it is the value of an unheld Mutex.
type ThreadID int

// NIL is the initial (unheld) value of a Mutex.
const NIL ThreadID = 0

// MutexID, CondID and SemID name the specification variables of each type.
type (
	MutexID int
	CondID  int
	SemID   int
)

// ThreadSet is a SET OF Thread with value semantics helpers.
type ThreadSet map[ThreadID]bool

// Insert returns the set with t added (mutates and returns the receiver;
// allocate with make or Clone first).
func (s ThreadSet) Insert(t ThreadID) ThreadSet {
	s[t] = true
	return s
}

// Delete removes t.
func (s ThreadSet) Delete(t ThreadID) ThreadSet {
	delete(s, t)
	return s
}

// Contains reports membership.
func (s ThreadSet) Contains(t ThreadID) bool { return s[t] }

// Empty reports whether the set is {}.
func (s ThreadSet) Empty() bool { return len(s) == 0 }

// Clone returns an independent copy.
func (s ThreadSet) Clone() ThreadSet {
	c := make(ThreadSet, len(s))
	for t := range s {
		c[t] = true
	}
	return c
}

// Equal reports set equality.
func (s ThreadSet) Equal(o ThreadSet) bool {
	if len(s) != len(o) {
		return false
	}
	for t := range s {
		if !o[t] {
			return false
		}
	}
	return true
}

// SubsetOf reports s ⊆ o.
func (s ThreadSet) SubsetOf(o ThreadSet) bool {
	for t := range s {
		if !o[t] {
			return false
		}
	}
	return true
}

// Members returns the sorted member list.
func (s ThreadSet) Members() []ThreadID {
	out := make([]ThreadID, 0, len(s))
	for t := range s {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (s ThreadSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, t := range s.Members() {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", t)
	}
	b.WriteByte('}')
	return b.String()
}

// State is a value of the specification's abstract state space. Variables
// not present in a map have their INITIALLY value (NIL, {}, available), so
// the zero State is the initial state of every program.
type State struct {
	Mutexes map[MutexID]ThreadID
	Conds   map[CondID]ThreadSet
	Sems    map[SemID]bool // true = unavailable; absent/false = available
	Alerts  ThreadSet
	// Pris holds effective scheduling priorities (the priority extension;
	// see priority.go). Absent means the INITIALLY value 0.
	Pris map[ThreadID]int
}

// NewState returns an empty (initial) state.
func NewState() *State {
	return &State{
		Mutexes: map[MutexID]ThreadID{},
		Conds:   map[CondID]ThreadSet{},
		Sems:    map[SemID]bool{},
		Alerts:  ThreadSet{},
		Pris:    map[ThreadID]int{},
	}
}

// Mutex returns the holder of m (NIL if unheld).
func (s *State) Mutex(m MutexID) ThreadID { return s.Mutexes[m] }

// SetMutex sets the holder of m.
func (s *State) SetMutex(m MutexID, t ThreadID) {
	if t == NIL {
		delete(s.Mutexes, m)
	} else {
		s.Mutexes[m] = t
	}
}

// Cond returns the waiting set of c (never nil; lazily created).
func (s *State) Cond(c CondID) ThreadSet {
	set, ok := s.Conds[c]
	if !ok {
		set = ThreadSet{}
		s.Conds[c] = set
	}
	return set
}

// CondHas reports t ∈ c without materializing an empty set.
func (s *State) CondHas(c CondID, t ThreadID) bool {
	return s.Conds[c].Contains(t)
}

// Pri returns t's effective priority (0 if never set).
func (s *State) Pri(t ThreadID) int { return s.Pris[t] }

// SetPri sets t's effective priority.
func (s *State) SetPri(t ThreadID, pri int) {
	if pri == 0 {
		delete(s.Pris, t)
	} else {
		s.Pris[t] = pri
	}
}

// SemAvailable reports whether semaphore sem is available.
func (s *State) SemAvailable(sem SemID) bool { return !s.Sems[sem] }

// SetSemAvailable sets sem's availability.
func (s *State) SetSemAvailable(sem SemID, avail bool) {
	if avail {
		delete(s.Sems, sem)
	} else {
		s.Sems[sem] = true
	}
}

// Clone returns a deep copy of the state.
func (s *State) Clone() *State {
	c := NewState()
	for m, t := range s.Mutexes {
		c.Mutexes[m] = t
	}
	for id, set := range s.Conds {
		if len(set) > 0 {
			c.Conds[id] = set.Clone()
		}
	}
	for id, v := range s.Sems {
		if v {
			c.Sems[id] = true
		}
	}
	c.Alerts = s.Alerts.Clone()
	for t, p := range s.Pris {
		if p != 0 {
			c.Pris[t] = p
		}
	}
	return c
}

// Equal reports state equality (with INITIALLY-default normalization).
func (s *State) Equal(o *State) bool { return s.Key() == o.Key() }

// Key returns a canonical string for the state, suitable for memoization
// in the model checker. Default-valued variables are omitted, so states
// that differ only in materialized-but-empty entries collide correctly.
func (s *State) Key() string {
	var b strings.Builder
	var ms []int
	for m, t := range s.Mutexes {
		if t != NIL {
			ms = append(ms, int(m))
		}
	}
	sort.Ints(ms)
	for _, m := range ms {
		fmt.Fprintf(&b, "m%d=%d;", m, s.Mutexes[MutexID(m)])
	}
	var cs []int
	for c, set := range s.Conds {
		if len(set) > 0 {
			cs = append(cs, int(c))
		}
	}
	sort.Ints(cs)
	for _, c := range cs {
		fmt.Fprintf(&b, "c%d=%s;", c, s.Conds[CondID(c)])
	}
	var sems []int
	for sem, v := range s.Sems {
		if v {
			sems = append(sems, int(sem))
		}
	}
	sort.Ints(sems)
	for _, sem := range sems {
		fmt.Fprintf(&b, "s%d=U;", sem)
	}
	if !s.Alerts.Empty() {
		fmt.Fprintf(&b, "a=%s;", s.Alerts)
	}
	var ps []int
	for t, p := range s.Pris {
		if p != 0 {
			ps = append(ps, int(t))
		}
	}
	sort.Ints(ps)
	for _, t := range ps {
		fmt.Fprintf(&b, "p%d=%d;", t, s.Pris[ThreadID(t)])
	}
	return b.String()
}

func (s *State) String() string {
	k := s.Key()
	if k == "" {
		return "(initial)"
	}
	return k
}
