package larch

import (
	"fmt"

	"threads/internal/spec"
)

// Value is the semantic domain of the specification's expressions: thread
// values (with NIL), thread sets, semaphore states and booleans.
type Value interface{ value() }

// ThreadVal is a Thread (or NIL when 0) — the value of a Mutex and of SELF.
type ThreadVal spec.ThreadID

// SetVal is a SET OF Thread.
type SetVal spec.ThreadSet

// EnumVal is a member of an enumeration type ("available", "unavailable").
type EnumVal string

// BoolVal is a boolean (the TestAlert result).
type BoolVal bool

func (ThreadVal) value() {}
func (SetVal) value()    {}
func (EnumVal) value()   {}
func (BoolVal) value()   {}

// ObjectRef binds a specification variable name to a concrete object of
// the abstract state.
type ObjectRef struct {
	Kind  ObjKind
	Mutex spec.MutexID
	Cond  spec.CondID
	Sem   spec.SemID
}

// ObjKind discriminates ObjectRef.
type ObjKind int

// Object kinds.
const (
	ObjMutex ObjKind = iota
	ObjCond
	ObjSem
	ObjAlerts
)

// MutexRef binds a formal to mutex m.
func MutexRef(m spec.MutexID) ObjectRef { return ObjectRef{Kind: ObjMutex, Mutex: m} }

// CondRef binds a formal to condition c.
func CondRef(c spec.CondID) ObjectRef { return ObjectRef{Kind: ObjCond, Cond: c} }

// SemRef binds a formal to semaphore s.
func SemRef(s spec.SemID) ObjectRef { return ObjectRef{Kind: ObjSem, Sem: s} }

// AlertsRef binds a name (normally "alerts") to the global alerts set.
func AlertsRef() ObjectRef { return ObjectRef{Kind: ObjAlerts} }

// Env supplies everything a two-state predicate mentions: the pre and post
// states, SELF, the formal-to-object bindings, scalar bindings (thread
// parameters like Alert's t, return formals like TestAlert's b), and the
// enumeration members in scope.
type Env struct {
	Pre, Post *spec.State
	Self      spec.ThreadID
	Objects   map[string]ObjectRef
	Scalars   map[string]Value
	// Enums lists enumeration member names ("available", "unavailable");
	// identifiers matching them evaluate to EnumVal.
	Enums map[string]bool
}

// NewEnv returns an Env over pre/post for SELF = self with the standard
// bindings: "alerts" → the alerts set, enum members of Semaphore in scope.
func NewEnv(pre, post *spec.State, self spec.ThreadID) *Env {
	return &Env{
		Pre:  pre,
		Post: post,
		Self: self,
		Objects: map[string]ObjectRef{
			"alerts": AlertsRef(),
		},
		Scalars: map[string]Value{},
		Enums:   map[string]bool{"available": true, "unavailable": true},
	}
}

// Bind adds a formal-to-object binding and returns the Env.
func (env *Env) Bind(name string, ref ObjectRef) *Env {
	env.Objects[name] = ref
	return env
}

// BindScalar adds a scalar binding (thread parameter or return formal).
func (env *Env) BindScalar(name string, v Value) *Env {
	env.Scalars[name] = v
	return env
}

// read returns the value of the object in the given state.
func (env *Env) read(ref ObjectRef, s *spec.State) Value {
	switch ref.Kind {
	case ObjMutex:
		return ThreadVal(s.Mutex(ref.Mutex))
	case ObjCond:
		return SetVal(s.Conds[ref.Cond].Clone())
	case ObjSem:
		if s.SemAvailable(ref.Sem) {
			return EnumVal("available")
		}
		return EnumVal("unavailable")
	case ObjAlerts:
		return SetVal(s.Alerts.Clone())
	default:
		panic(fmt.Sprintf("larch: unknown object kind %d", ref.Kind))
	}
}

// EvalBool evaluates a predicate; it fails if the expression is not
// boolean-valued or mentions unbound names.
func (env *Env) EvalBool(e Expr) (bool, error) {
	v, err := env.Eval(e)
	if err != nil {
		return false, err
	}
	b, ok := v.(BoolVal)
	if !ok {
		return false, fmt.Errorf("larch: %s is not a boolean (got %T)", e, v)
	}
	return bool(b), nil
}

// Eval evaluates an expression to a Value.
func (env *Env) Eval(e Expr) (Value, error) {
	switch x := e.(type) {
	case SelfExpr:
		return ThreadVal(env.Self), nil
	case NilExpr:
		return ThreadVal(spec.NIL), nil
	case EmptySet:
		return SetVal(spec.ThreadSet{}), nil
	case Ident:
		if ref, ok := env.Objects[x.Name]; ok {
			if x.Primed {
				return env.read(ref, env.Post), nil
			}
			return env.read(ref, env.Pre), nil
		}
		if x.Primed {
			return nil, fmt.Errorf("larch: primed reference to unbound variable %s'", x.Name)
		}
		if v, ok := env.Scalars[x.Name]; ok {
			return v, nil
		}
		if env.Enums[x.Name] {
			return EnumVal(x.Name), nil
		}
		return nil, fmt.Errorf("larch: unbound identifier %s", x.Name)
	case Not:
		b, err := env.EvalBool(x.X)
		if err != nil {
			return nil, err
		}
		return BoolVal(!b), nil
	case Unchanged:
		for _, name := range x.Names {
			ref, ok := env.Objects[name]
			if !ok {
				return nil, fmt.Errorf("larch: UNCHANGED of unbound variable %s", name)
			}
			if !valueEqual(env.read(ref, env.Pre), env.read(ref, env.Post)) {
				return BoolVal(false), nil
			}
		}
		return BoolVal(true), nil
	case Call:
		return env.evalCall(x)
	case Binary:
		return env.evalBinary(x)
	default:
		return nil, fmt.Errorf("larch: cannot evaluate %T", e)
	}
}

func (env *Env) evalCall(c Call) (Value, error) {
	if len(c.Args) != 2 {
		return nil, fmt.Errorf("larch: %s expects 2 arguments", c.Fn)
	}
	setV, err := env.Eval(c.Args[0])
	if err != nil {
		return nil, err
	}
	set, ok := setV.(SetVal)
	if !ok {
		return nil, fmt.Errorf("larch: first argument of %s is not a set", c.Fn)
	}
	elemV, err := env.Eval(c.Args[1])
	if err != nil {
		return nil, err
	}
	elem, ok := elemV.(ThreadVal)
	if !ok {
		return nil, fmt.Errorf("larch: second argument of %s is not a thread", c.Fn)
	}
	out := spec.ThreadSet(set).Clone()
	switch c.Fn {
	case "insert":
		out.Insert(spec.ThreadID(elem))
	case "delete":
		out.Delete(spec.ThreadID(elem))
	default:
		return nil, fmt.Errorf("larch: unknown function %s", c.Fn)
	}
	return SetVal(out), nil
}

func (env *Env) evalBinary(b Binary) (Value, error) {
	switch b.Op {
	case "&", "|":
		l, err := env.EvalBool(b.L)
		if err != nil {
			return nil, err
		}
		// Both operands are total predicates; no short-circuit needed,
		// but evaluate lazily anyway to keep errors local.
		if b.Op == "&" && !l {
			return BoolVal(false), nil
		}
		if b.Op == "|" && l {
			return BoolVal(true), nil
		}
		r, err := env.EvalBool(b.R)
		if err != nil {
			return nil, err
		}
		return BoolVal(r), nil
	case "=":
		l, err := env.Eval(b.L)
		if err != nil {
			return nil, err
		}
		r, err := env.Eval(b.R)
		if err != nil {
			return nil, err
		}
		return BoolVal(valueEqual(l, r)), nil
	case "<=":
		l, err := env.Eval(b.L)
		if err != nil {
			return nil, err
		}
		r, err := env.Eval(b.R)
		if err != nil {
			return nil, err
		}
		ls, lok := l.(SetVal)
		rs, rok := r.(SetVal)
		if !lok || !rok {
			return nil, fmt.Errorf("larch: <= requires set operands")
		}
		return BoolVal(spec.ThreadSet(ls).SubsetOf(spec.ThreadSet(rs))), nil
	case "IN":
		l, err := env.Eval(b.L)
		if err != nil {
			return nil, err
		}
		r, err := env.Eval(b.R)
		if err != nil {
			return nil, err
		}
		lt, lok := l.(ThreadVal)
		rs, rok := r.(SetVal)
		if !lok || !rok {
			return nil, fmt.Errorf("larch: IN requires thread and set operands")
		}
		return BoolVal(spec.ThreadSet(rs).Contains(spec.ThreadID(lt))), nil
	default:
		return nil, fmt.Errorf("larch: unknown operator %s", b.Op)
	}
}

func valueEqual(a, b Value) bool {
	switch x := a.(type) {
	case ThreadVal:
		y, ok := b.(ThreadVal)
		return ok && x == y
	case EnumVal:
		y, ok := b.(EnumVal)
		return ok && x == y
	case BoolVal:
		y, ok := b.(BoolVal)
		return ok && x == y
	case SetVal:
		y, ok := b.(SetVal)
		return ok && spec.ThreadSet(x).Equal(spec.ThreadSet(y))
	default:
		return false
	}
}
