package larch

import (
	"strings"
	"testing"

	"threads/internal/spec"
)

func TestVariantSourcesParseAndTypeCheck(t *testing.T) {
	for _, v := range []spec.Variant{spec.VariantFinal, spec.VariantNoMNil, spec.VariantUnchangedC} {
		doc, err := SpecVariant(v)
		if err != nil {
			t.Fatalf("variant %v: %v", v, err)
		}
		if errs := Check(doc); len(errs) != 0 {
			t.Fatalf("variant %v does not type-check: %v", v, errs)
		}
		// Both bugs were *well-typed* specifications — that is the point:
		// type checking cannot find semantic errors, only the model
		// checker and human reasoning can.
	}
}

func TestVariantClauses(t *testing.T) {
	noMNil, err := SpecVariant(spec.VariantNoMNil)
	if err != nil {
		t.Fatal(err)
	}
	raise := raiseCase(t, noMNil)
	if strings.Contains(raise.When.String(), "m = NIL") {
		t.Fatalf("no-m-nil variant still guards on m = NIL: %s", raise.When)
	}
	unchanged, err := SpecVariant(spec.VariantUnchangedC)
	if err != nil {
		t.Fatal(err)
	}
	raise = raiseCase(t, unchanged)
	if !strings.Contains(raise.When.String(), "m = NIL") {
		t.Fatalf("unchanged-c variant lost the m = NIL guard: %s", raise.When)
	}
	if !strings.Contains(raise.Ensures.String(), "UNCHANGED [c]") {
		t.Fatalf("unchanged-c variant should require UNCHANGED [c]: %s", raise.Ensures)
	}
}

func raiseCase(t *testing.T, doc *Document) CaseDecl {
	t.Helper()
	aw := doc.Proc("AlertWait")
	if aw == nil {
		t.Fatal("no AlertWait")
	}
	ar := aw.Action("AlertResume")
	if ar == nil {
		t.Fatal("no AlertResume")
	}
	c, err := findCase(ar.Cases, "Alerted")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestVariantTransitionsAgree: each hand-coded buggy transition satisfies
// its own variant's parsed text — the Go encodings of the historical specs
// and their Larch sources mean the same thing.
func TestVariantTransitionsAgree(t *testing.T) {
	// unchanged-c: raising leaves the ghost in c.
	pre := spec.NewState()
	pre.Cond(1).Insert(1)
	pre.Alerts.Insert(1)
	act := spec.AlertResumeRaise{T: 1, M: 1, C: 1, Variant: spec.VariantUnchangedC}
	post := pre.Clone()
	act.Apply(post)
	if err := CheckActionVariant(spec.VariantUnchangedC, act, pre, post); err != nil {
		t.Fatalf("unchanged-c transition rejected by its own text: %v", err)
	}
	// ... and the same transition violates the FINAL text (c not deleted).
	final := spec.AlertResumeRaise{T: 1, M: 1, C: 1, Variant: spec.VariantFinal}
	if err := CheckActionVariant(spec.VariantFinal, final, pre, post); err == nil {
		t.Fatal("ghost-leaving transition accepted by the corrected text")
	}

	// no-m-nil: raising while the mutex is held is enabled by the buggy
	// text and disabled by the corrected one.
	held := spec.NewState()
	held.Cond(1).Insert(1)
	held.Alerts.Insert(1)
	held.SetMutex(1, 2) // someone else holds m
	bug := spec.AlertResumeRaise{T: 1, M: 1, C: 1, Variant: spec.VariantNoMNil}
	postBug := held.Clone()
	bug.Apply(postBug) // seizes the mutex
	if err := CheckActionVariant(spec.VariantNoMNil, bug, held, postBug); err != nil {
		t.Fatalf("no-m-nil transition rejected by its own text: %v", err)
	}
	finalHeld := spec.AlertResumeRaise{T: 1, M: 1, C: 1, Variant: spec.VariantFinal}
	postHeld := held.Clone()
	postHeld.SetMutex(1, 1)
	postHeld.Alerts.Delete(1)
	postHeld.Cond(1).Delete(1)
	err := CheckActionVariant(spec.VariantFinal, finalHeld, held, postHeld)
	if err == nil || !strings.Contains(err.Error(), "WHEN") {
		t.Fatalf("corrected text should disable the raise while m is held: %v", err)
	}
}

func TestSpecSourceVariantFinalIsIdentity(t *testing.T) {
	src, err := SpecSourceVariant(spec.VariantFinal)
	if err != nil {
		t.Fatal(err)
	}
	if src != SpecSource {
		t.Fatal("final variant should return SpecSource verbatim")
	}
}

// TestAlertWaitFinalConstMatchesSpecSource: the standalone final AlertWait
// text and the one embedded in SpecSource stay in sync.
func TestAlertWaitFinalConstMatchesSpecSource(t *testing.T) {
	prelude := `
TYPE Mutex = Thread INITIALLY NIL
TYPE Condition = SET OF Thread INITIALLY {}
VAR alerts: SET OF Thread INITIALLY {}
EXCEPTION Alerted
`
	doc, err := Parse(prelude + alertWaitFinal)
	if err != nil {
		t.Fatal(err)
	}
	got := doc.Proc("AlertWait").String()
	want := Spec().Proc("AlertWait").String()
	if got != want {
		t.Fatalf("final AlertWait texts diverge:\n%s\nvs\n%s", got, want)
	}
}
