package larch

import (
	"fmt"
	"strings"
)

// The value types of the specification's expression language.
type valueType int

const (
	vInvalid valueType = iota
	vThread            // Thread values, including NIL
	vBool
	vSet  // SET OF Thread
	vEnum // a member of some enumeration
)

func (v valueType) String() string {
	switch v {
	case vThread:
		return "Thread"
	case vBool:
		return "bool"
	case vSet:
		return "SET OF Thread"
	case vEnum:
		return "enumeration"
	default:
		return "invalid"
	}
}

// TypeError is one problem found by Check.
type TypeError struct {
	Where string // "Acquire", "AlertWait/AlertResume", ...
	Msg   string
}

func (e TypeError) Error() string {
	if e.Where == "" {
		return "larch: " + e.Msg
	}
	return "larch: " + e.Where + ": " + e.Msg
}

// checker state for one document.
type typeChecker struct {
	types   map[string]valueType // declared type name → value type
	globals map[string]valueType // VAR name → value type
	enums   map[string]bool      // enumeration member names
	errs    []error
}

// Check validates a parsed specification document:
//
//   - declarations are unique and their INITIALLY values fit their types;
//   - every parameter type resolves (Thread, bool, a declared TYPE, a SET
//     or an inline enumeration);
//   - COMPOSITION OF lists exactly the procedure's declared ATOMIC ACTIONs,
//     in order;
//   - every RAISES case names an exception from the procedure header;
//   - MODIFIES AT MOST frames name only VAR parameters or global VARs;
//   - every predicate is boolean and well-typed: `=` compares equal types,
//     IN is Thread × SET, `<=` is SET × SET, & | NOT take booleans,
//     insert/delete take (SET, Thread);
//   - identifiers are bound (parameters, the RETURNS formal, globals, or
//     enumeration members), and primed references x' name something
//     modifiable (a VAR parameter or a global);
//   - REQUIRES and WHEN are single-state: they must not mention primed
//     values.
//
// It returns all problems found (nil if the document is well-typed).
func Check(doc *Document) []error {
	tc := &typeChecker{
		types:   map[string]valueType{"Thread": vThread, "bool": vBool},
		globals: map[string]valueType{},
		enums:   map[string]bool{},
	}
	exceptions := map[string]bool{}
	procs := map[string]bool{}
	// Pass 1: declarations.
	for _, d := range doc.Decls {
		switch dd := d.(type) {
		case *TypeDecl:
			if _, dup := tc.types[dd.Name]; dup {
				tc.errorf(dd.Name, "type declared twice")
				continue
			}
			vt := tc.resolveType(dd.Name, dd.Type)
			tc.types[dd.Name] = vt
			tc.checkInitially(dd.Name, vt, dd.Initially)
		case *VarDecl:
			if _, dup := tc.globals[dd.Name]; dup {
				tc.errorf(dd.Name, "variable declared twice")
				continue
			}
			vt := tc.resolveType(dd.Name, dd.Type)
			tc.globals[dd.Name] = vt
			tc.checkInitially(dd.Name, vt, dd.Initially)
		case *ExceptionDecl:
			if exceptions[dd.Name] {
				tc.errorf(dd.Name, "exception declared twice")
			}
			exceptions[dd.Name] = true
		}
	}
	// Pass 2: procedures.
	for _, d := range doc.Decls {
		p, ok := d.(*ProcDecl)
		if !ok {
			continue
		}
		if procs[p.Name] {
			tc.errorf(p.Name, "procedure declared twice")
			continue
		}
		procs[p.Name] = true
		tc.checkProc(p, exceptions)
	}
	return tc.errs
}

func (tc *typeChecker) errorf(where, format string, args ...any) {
	tc.errs = append(tc.errs, TypeError{Where: where, Msg: fmt.Sprintf(format, args...)})
}

func (tc *typeChecker) resolveType(where string, t TypeExpr) valueType {
	switch tt := t.(type) {
	case NamedType:
		if vt, ok := tc.types[tt.Name]; ok {
			return vt
		}
		tc.errorf(where, "unknown type %s", tt.Name)
		return vInvalid
	case SetType:
		elem := tc.resolveType(where, tt.Elem)
		if elem != vThread {
			tc.errorf(where, "SET OF %s is not supported; sets hold Threads", elem)
		}
		return vSet
	case EnumType:
		seen := map[string]bool{}
		for _, m := range tt.Members {
			if seen[m] {
				tc.errorf(where, "enumeration member %s repeated", m)
			}
			seen[m] = true
			tc.enums[m] = true
		}
		return vEnum
	default:
		tc.errorf(where, "unsupported type expression %v", t)
		return vInvalid
	}
}

func (tc *typeChecker) checkInitially(where string, vt valueType, init Expr) {
	if init == nil {
		tc.errorf(where, "missing INITIALLY value")
		return
	}
	got := tc.typeOfLiteral(init)
	if got == vInvalid {
		tc.errorf(where, "INITIALLY value %s is not a literal", init)
		return
	}
	if got != vt {
		tc.errorf(where, "INITIALLY value %s has type %s, want %s", init, got, vt)
	}
}

// typeOfLiteral types the restricted expressions allowed after INITIALLY.
func (tc *typeChecker) typeOfLiteral(e Expr) valueType {
	switch x := e.(type) {
	case NilExpr:
		return vThread
	case EmptySet:
		return vSet
	case Ident:
		if !x.Primed && tc.enums[x.Name] {
			return vEnum
		}
		return vInvalid
	default:
		return vInvalid
	}
}

// scope is the name environment of one procedure.
type scope struct {
	where      string
	params     map[string]valueType
	modifiable map[string]bool // VAR params and globals
	returns    map[string]valueType
}

func (tc *typeChecker) checkProc(p *ProcDecl, exceptions map[string]bool) {
	sc := &scope{
		where:      p.Name,
		params:     map[string]valueType{},
		modifiable: map[string]bool{},
		returns:    map[string]valueType{},
	}
	for _, param := range p.Params {
		if _, dup := sc.params[param.Name]; dup {
			tc.errorf(p.Name, "parameter %s repeated", param.Name)
		}
		sc.params[param.Name] = tc.resolveType(p.Name+"/"+param.Name, param.Type)
		if param.Var {
			sc.modifiable[param.Name] = true
		}
	}
	if p.Returns != nil {
		sc.returns[p.Returns.Name] = tc.resolveType(p.Name+"/returns", p.Returns.Type)
	}
	for g := range tc.globals {
		sc.modifiable[g] = true
	}
	for _, exc := range p.Raises {
		if !exceptions[exc] {
			tc.errorf(p.Name, "RAISES names undeclared exception %s", exc)
		}
	}
	// COMPOSITION OF lists the declared actions, in order.
	if len(p.Composition) > 0 || len(p.Actions) > 0 {
		var actionNames []string
		for _, a := range p.Actions {
			actionNames = append(actionNames, a.Name)
		}
		if strings.Join(p.Composition, ";") != strings.Join(actionNames, ";") {
			tc.errorf(p.Name, "COMPOSITION OF %v does not match declared actions %v",
				p.Composition, actionNames)
		}
	}
	if p.Atomic && len(p.Actions) > 0 {
		tc.errorf(p.Name, "an ATOMIC PROCEDURE cannot contain ATOMIC ACTIONs")
	}
	// MODIFIES frame.
	for _, name := range p.Modifies {
		if !sc.modifiable[name] {
			tc.errorf(p.Name, "MODIFIES AT MOST names %s, which is not a VAR parameter or global", name)
		}
	}
	// Clauses.
	tc.checkClause(sc, "REQUIRES", p.Requires, false)
	tc.checkClause(sc, "WHEN", p.When, false)
	tc.checkClause(sc, "ENSURES", p.Ensures, true)
	for _, c := range p.Cases {
		tc.checkCase(sc, p.Name, c, exceptions, p.Raises)
	}
	for _, a := range p.Actions {
		aw := &scope{
			where:      p.Name + "/" + a.Name,
			params:     sc.params,
			modifiable: sc.modifiable,
			returns:    sc.returns,
		}
		tc.checkClause(aw, "WHEN", a.When, false)
		tc.checkClause(aw, "ENSURES", a.Ensures, true)
		for _, c := range a.Cases {
			tc.checkCase(aw, aw.where, c, exceptions, p.Raises)
		}
	}
}

func (tc *typeChecker) checkCase(sc *scope, where string, c CaseDecl, exceptions map[string]bool, declared []string) {
	if c.Raises != "" {
		if !exceptions[c.Raises] {
			tc.errorf(where, "RAISES case names undeclared exception %s", c.Raises)
		} else {
			found := false
			for _, d := range declared {
				if d == c.Raises {
					found = true
				}
			}
			if !found {
				tc.errorf(where, "RAISES %s is not in the procedure's RAISES set %v", c.Raises, declared)
			}
		}
	}
	tc.checkClause(sc, "WHEN", c.When, false)
	tc.checkClause(sc, "ENSURES", c.Ensures, true)
}

// checkClause types a predicate; allowPost permits primed references.
func (tc *typeChecker) checkClause(sc *scope, kind string, e Expr, allowPost bool) {
	if e == nil {
		return
	}
	got := tc.typeOf(sc, kind, e, allowPost)
	if got != vBool && got != vInvalid {
		tc.errorf(sc.where, "%s clause has type %s, want bool: %s", kind, got, e)
	}
}

// typeOf types an expression, reporting problems as it goes.
func (tc *typeChecker) typeOf(sc *scope, kind string, e Expr, allowPost bool) valueType {
	switch x := e.(type) {
	case SelfExpr:
		return vThread
	case NilExpr:
		return vThread
	case EmptySet:
		return vSet
	case Ident:
		if x.Primed {
			if !allowPost {
				tc.errorf(sc.where, "%s is a single-state clause but mentions %s", kind, x)
			}
			if !sc.modifiable[x.Name] {
				tc.errorf(sc.where, "%s' refers to a value the procedure may not modify", x.Name)
			}
		}
		if vt, ok := sc.params[x.Name]; ok {
			return vt
		}
		if vt, ok := sc.returns[x.Name]; ok {
			return vt
		}
		if vt, ok := tc.globals[x.Name]; ok {
			return vt
		}
		if tc.enums[x.Name] {
			if x.Primed {
				tc.errorf(sc.where, "enumeration member %s cannot be primed", x.Name)
			}
			return vEnum
		}
		tc.errorf(sc.where, "unbound identifier %s in %s clause", x.Name, kind)
		return vInvalid
	case Not:
		if got := tc.typeOf(sc, kind, x.X, allowPost); got != vBool && got != vInvalid {
			tc.errorf(sc.where, "NOT applied to %s", got)
		}
		return vBool
	case Unchanged:
		if !allowPost {
			tc.errorf(sc.where, "%s is a single-state clause but contains UNCHANGED", kind)
		}
		for _, name := range x.Names {
			if !sc.modifiable[name] {
				tc.errorf(sc.where, "UNCHANGED names %s, which is not a VAR parameter or global", name)
			}
		}
		return vBool
	case Call:
		if x.Fn != "insert" && x.Fn != "delete" {
			tc.errorf(sc.where, "unknown function %s", x.Fn)
			return vInvalid
		}
		if len(x.Args) != 2 {
			tc.errorf(sc.where, "%s expects 2 arguments, got %d", x.Fn, len(x.Args))
			return vSet
		}
		if got := tc.typeOf(sc, kind, x.Args[0], allowPost); got != vSet && got != vInvalid {
			tc.errorf(sc.where, "%s's first argument has type %s, want SET OF Thread", x.Fn, got)
		}
		if got := tc.typeOf(sc, kind, x.Args[1], allowPost); got != vThread && got != vInvalid {
			tc.errorf(sc.where, "%s's second argument has type %s, want Thread", x.Fn, got)
		}
		return vSet
	case Binary:
		l := tc.typeOf(sc, kind, x.L, allowPost)
		r := tc.typeOf(sc, kind, x.R, allowPost)
		switch x.Op {
		case "&", "|":
			if (l != vBool && l != vInvalid) || (r != vBool && r != vInvalid) {
				tc.errorf(sc.where, "%s applied to %s and %s", x.Op, l, r)
			}
			return vBool
		case "=":
			if l != r && l != vInvalid && r != vInvalid {
				tc.errorf(sc.where, "= compares %s with %s", l, r)
			}
			return vBool
		case "<=":
			if (l != vSet && l != vInvalid) || (r != vSet && r != vInvalid) {
				tc.errorf(sc.where, "<= (subset) applied to %s and %s", l, r)
			}
			return vBool
		case "IN":
			if (l != vThread && l != vInvalid) || (r != vSet && r != vInvalid) {
				tc.errorf(sc.where, "IN applied to %s and %s, want Thread IN SET", l, r)
			}
			return vBool
		default:
			tc.errorf(sc.where, "unknown operator %s", x.Op)
			return vInvalid
		}
	default:
		tc.errorf(sc.where, "cannot type expression %T", e)
		return vInvalid
	}
}
