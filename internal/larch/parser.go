package larch

import "fmt"

// Parser turns tokens into a Document.
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses a complete specification document.
func Parse(src string) (*Document, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	doc := &Document{}
	for !p.at(EOF) {
		d, err := p.parseDecl()
		if err != nil {
			return nil, err
		}
		doc.Decls = append(doc.Decls, d)
	}
	return doc, nil
}

// MustParse is Parse for known-good sources (the embedded paper text).
func MustParse(src string) *Document {
	doc, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return doc
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) at(k Kind) bool { return p.cur().Kind == k }

func (p *Parser) atKeyword(kw string) bool {
	t := p.cur()
	return t.Kind == KEYWORD && t.Text == kw
}

// peekKeyword reports whether the token at offset d is the given keyword.
func (p *Parser) peekKeyword(d int, kw string) bool {
	if p.pos+d >= len(p.toks) {
		return false
	}
	t := p.toks[p.pos+d]
	return t.Kind == KEYWORD && t.Text == kw
}

func (p *Parser) errf(format string, args ...any) error {
	t := p.cur()
	return fmt.Errorf("larch: %d:%d: %s (at %s)", t.Line, t.Col, fmt.Sprintf(format, args...), t)
}

func (p *Parser) expect(k Kind) (Token, error) {
	if !p.at(k) {
		return p.cur(), p.errf("expected %s", k)
	}
	return p.next(), nil
}

func (p *Parser) expectKeyword(kw string) error {
	if !p.atKeyword(kw) {
		return p.errf("expected %s", kw)
	}
	p.next()
	return nil
}

func (p *Parser) expectIdent() (string, error) {
	t, err := p.expect(IDENT)
	return t.Text, err
}

func (p *Parser) parseDecl() (Decl, error) {
	switch {
	case p.atKeyword("TYPE"):
		return p.parseTypeDecl()
	case p.atKeyword("VAR"):
		return p.parseVarDecl()
	case p.atKeyword("EXCEPTION"):
		p.next()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &ExceptionDecl{Name: name}, nil
	case p.atKeyword("ATOMIC") && p.peekKeyword(1, "PROCEDURE"):
		p.next()
		return p.parseProc(true)
	case p.atKeyword("PROCEDURE"):
		return p.parseProc(false)
	default:
		return nil, p.errf("expected a declaration")
	}
}

func (p *Parser) parseTypeDecl() (Decl, error) {
	p.next() // TYPE
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(EQ); err != nil {
		return nil, err
	}
	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INITIALLY"); err != nil {
		return nil, err
	}
	init, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	return &TypeDecl{Name: name, Type: typ, Initially: init}, nil
}

func (p *Parser) parseVarDecl() (Decl, error) {
	p.next() // VAR
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(COLON); err != nil {
		return nil, err
	}
	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INITIALLY"); err != nil {
		return nil, err
	}
	init, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	return &VarDecl{Name: name, Type: typ, Initially: init}, nil
}

func (p *Parser) parseType() (TypeExpr, error) {
	switch {
	case p.atKeyword("SET"):
		p.next()
		if err := p.expectKeyword("OF"); err != nil {
			return nil, err
		}
		elem, err := p.parseType()
		if err != nil {
			return nil, err
		}
		return SetType{Elem: elem}, nil
	case p.at(LPAREN):
		p.next()
		var members []string
		for {
			m, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			members = append(members, m)
			if p.at(COMMA) {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return EnumType{Members: members}, nil
	case p.at(IDENT):
		return NamedType{Name: p.next().Text}, nil
	default:
		return nil, p.errf("expected a type")
	}
}

func (p *Parser) parseProc(atomic bool) (*ProcDecl, error) {
	p.next() // PROCEDURE
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	proc := &ProcDecl{Atomic: atomic, Name: name}
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	for !p.at(RPAREN) {
		param, err := p.parseParam()
		if err != nil {
			return nil, err
		}
		proc.Params = append(proc.Params, param)
		if p.at(SEMI) {
			p.next()
		}
	}
	p.next() // RPAREN

	// Header RETURNS (b: bool) — distinguished from a RETURNS WHEN case
	// clause by the parenthesis.
	if p.atKeyword("RETURNS") && p.pos+1 < len(p.toks) && p.toks[p.pos+1].Kind == LPAREN {
		p.next()
		p.next() // LPAREN
		param, err := p.parseParam()
		if err != nil {
			return nil, err
		}
		proc.Returns = &param
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
	}
	// Header RAISES {A, B}.
	if p.atKeyword("RAISES") && p.pos+1 < len(p.toks) && p.toks[p.pos+1].Kind == LBRACE {
		p.next()
		p.next() // LBRACE
		for !p.at(RBRACE) {
			exc, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			proc.Raises = append(proc.Raises, exc)
			if p.at(COMMA) {
				p.next()
			}
		}
		p.next() // RBRACE
	}
	// = COMPOSITION OF A; B END
	if p.at(EQ) {
		p.next()
		if err := p.expectKeyword("COMPOSITION"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("OF"); err != nil {
			return nil, err
		}
		for {
			a, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			proc.Composition = append(proc.Composition, a)
			if p.at(SEMI) {
				p.next()
				continue
			}
			break
		}
		if err := p.expectKeyword("END"); err != nil {
			return nil, err
		}
	}
	// Clauses until the next top-level declaration.
	for {
		switch {
		case p.atKeyword("REQUIRES"):
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			proc.Requires = e
		case p.atKeyword("MODIFIES"):
			p.next()
			if err := p.expectKeyword("AT"); err != nil {
				return nil, err
			}
			if err := p.expectKeyword("MOST"); err != nil {
				return nil, err
			}
			names, err := p.parseNameList()
			if err != nil {
				return nil, err
			}
			proc.Modifies = names
		case p.atKeyword("WHEN"):
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			proc.When = e
		case p.atKeyword("ENSURES"):
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			proc.Ensures = e
		case p.atKeyword("RETURNS") || p.atKeyword("RAISES"):
			c, err := p.parseCase()
			if err != nil {
				return nil, err
			}
			proc.Cases = append(proc.Cases, c)
		case p.atKeyword("ATOMIC") && p.peekKeyword(1, "ACTION"):
			p.next()
			p.next()
			act, err := p.parseAction()
			if err != nil {
				return nil, err
			}
			proc.Actions = append(proc.Actions, act)
		default:
			return proc, nil
		}
	}
}

func (p *Parser) parseParam() (Param, error) {
	var param Param
	if p.atKeyword("VAR") {
		p.next()
		param.Var = true
	}
	name, err := p.expectIdent()
	if err != nil {
		return param, err
	}
	param.Name = name
	if _, err := p.expect(COLON); err != nil {
		return param, err
	}
	typ, err := p.parseType()
	if err != nil {
		return param, err
	}
	param.Type = typ
	return param, nil
}

// parseAction parses the clauses of an ATOMIC ACTION (name already
// consumed by the caller except the identifier).
func (p *Parser) parseAction() (*ActionDecl, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	act := &ActionDecl{Name: name}
	for {
		switch {
		case p.atKeyword("WHEN"):
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			act.When = e
		case p.atKeyword("ENSURES"):
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			act.Ensures = e
		case p.atKeyword("RETURNS") || p.atKeyword("RAISES"):
			c, err := p.parseCase()
			if err != nil {
				return nil, err
			}
			act.Cases = append(act.Cases, c)
		default:
			return act, nil
		}
	}
}

// parseCase parses RETURNS WHEN e ENSURES e or RAISES X WHEN e ENSURES e.
func (p *Parser) parseCase() (CaseDecl, error) {
	var c CaseDecl
	if p.atKeyword("RAISES") {
		p.next()
		exc, err := p.expectIdent()
		if err != nil {
			return c, err
		}
		c.Raises = exc
	} else {
		p.next() // RETURNS
	}
	if p.atKeyword("WHEN") {
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return c, err
		}
		c.When = e
	}
	if p.atKeyword("ENSURES") {
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return c, err
		}
		c.Ensures = e
	}
	return c, nil
}

func (p *Parser) parseNameList() ([]string, error) {
	if _, err := p.expect(LBRACK); err != nil {
		return nil, err
	}
	var names []string
	for !p.at(RBRACK) {
		n, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		names = append(names, n)
		if p.at(COMMA) {
			p.next()
		}
	}
	p.next() // RBRACK
	return names, nil
}

// ---------------------------------------------------------------------------
// Expressions: or := and ('|' and)*; and := cmp ('&' cmp)*;
// cmp := unary (('='|'<='|'IN') unary)?; unary := 'NOT' unary | primary.
// ---------------------------------------------------------------------------

func (p *Parser) parseExpr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.at(PIPE) {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: "|", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.at(AMP) {
		p.next()
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: "&", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseCmp() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	var op string
	switch {
	case p.at(EQ):
		op = "="
	case p.at(SUBSET):
		op = "<="
	case p.atKeyword("IN"):
		op = "IN"
	default:
		return l, nil
	}
	p.next()
	r, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	return Binary{Op: op, L: l, R: r}, nil
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.atKeyword("NOT") {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not{X: x}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	switch {
	case p.atKeyword("SELF"):
		p.next()
		return SelfExpr{}, nil
	case p.atKeyword("NIL"):
		p.next()
		return NilExpr{}, nil
	case p.atKeyword("UNCHANGED"):
		p.next()
		names, err := p.parseNameList()
		if err != nil {
			return nil, err
		}
		return Unchanged{Names: names}, nil
	case p.at(LBRACE):
		p.next()
		if _, err := p.expect(RBRACE); err != nil {
			return nil, err
		}
		return EmptySet{}, nil
	case p.at(LPAREN):
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return e, nil
	case p.at(IDENT):
		name := p.next().Text
		if p.at(LPAREN) {
			p.next()
			var args []Expr
			for !p.at(RPAREN) {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if p.at(COMMA) {
					p.next()
				}
			}
			p.next() // RPAREN
			return Call{Fn: name, Args: args}, nil
		}
		if p.at(PRIME) {
			p.next()
			return Ident{Name: name, Primed: true}, nil
		}
		return Ident{Name: name}, nil
	default:
		return nil, p.errf("expected an expression")
	}
}
