// Package larch implements the specification notation of SRC Report 20: the
// Larch interface language extended for concurrency with WHEN clauses,
// ATOMIC PROCEDURE / ATOMIC ACTION, COMPOSITION OF, and SELF.
//
// The package provides a lexer, parser, AST, formatter and — the part that
// makes the specification *executable* — an evaluator of the two-state
// predicates (REQUIRES, WHEN, ENSURES) over internal/spec states. The
// paper's complete specification, transcribed in ASCII (x' for x-post, IN
// for ∈, <= for ⊆, {} for the empty set), ships as SpecSource and parses
// into the same semantics as the hand-coded actions of internal/spec; the
// two are property-tested against each other.
package larch

import "fmt"

// Kind classifies tokens.
type Kind int

const (
	EOF     Kind = iota
	IDENT        // Acquire, m, insert, available ...
	KEYWORD      // TYPE, PROCEDURE, WHEN ... (see keywords)
	LPAREN       // (
	RPAREN       // )
	LBRACK       // [
	RBRACK       // ]
	LBRACE       // {
	RBRACE       // }
	COMMA        // ,
	SEMI         // ;
	COLON        // :
	EQ           // =
	AMP          // &
	PIPE         // |
	SUBSET       // <=
	PRIME        // '
)

func (k Kind) String() string {
	switch k {
	case EOF:
		return "EOF"
	case IDENT:
		return "identifier"
	case KEYWORD:
		return "keyword"
	case LPAREN:
		return "("
	case RPAREN:
		return ")"
	case LBRACK:
		return "["
	case RBRACK:
		return "]"
	case LBRACE:
		return "{"
	case RBRACE:
		return "}"
	case COMMA:
		return ","
	case SEMI:
		return ";"
	case COLON:
		return ":"
	case EQ:
		return "="
	case AMP:
		return "&"
	case PIPE:
		return "|"
	case SUBSET:
		return "<="
	case PRIME:
		return "'"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Token is one lexeme with its source position.
type Token struct {
	Kind Kind
	Text string
	Line int
	Col  int
}

func (t Token) String() string {
	if t.Text != "" {
		return fmt.Sprintf("%q", t.Text)
	}
	return t.Kind.String()
}

// keywords of the notation. All-caps identifiers that are not keywords
// (like P or V) remain identifiers.
var keywords = map[string]bool{
	"TYPE": true, "VAR": true, "EXCEPTION": true,
	"PROCEDURE": true, "ATOMIC": true, "ACTION": true,
	"COMPOSITION": true, "OF": true, "END": true,
	"REQUIRES": true, "MODIFIES": true, "AT": true, "MOST": true,
	"WHEN": true, "ENSURES": true, "RETURNS": true, "RAISES": true,
	"INITIALLY": true, "SET": true,
	"SELF": true, "NIL": true, "IN": true, "NOT": true,
	"UNCHANGED": true,
}
