package larch

import "fmt"

// Lexer tokenizes specification source. Comments run from "--" to end of
// line (the Larch convention).
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Lex tokenizes the whole input.
func Lex(src string) ([]Token, error) {
	lx := NewLexer(src)
	var out []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == EOF {
			return out, nil
		}
	}
}

func (l *Lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isLetter(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	// Skip whitespace and comments.
	for l.pos < len(l.src) {
		c := l.peek()
		if c == ' ' || c == '\t' || c == '\r' || c == '\n' {
			l.advance()
			continue
		}
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
			continue
		}
		break
	}
	tok := Token{Line: l.line, Col: l.col}
	if l.pos >= len(l.src) {
		tok.Kind = EOF
		return tok, nil
	}
	c := l.advance()
	switch c {
	case '(':
		tok.Kind = LPAREN
	case ')':
		tok.Kind = RPAREN
	case '[':
		tok.Kind = LBRACK
	case ']':
		tok.Kind = RBRACK
	case '{':
		tok.Kind = LBRACE
	case '}':
		tok.Kind = RBRACE
	case ',':
		tok.Kind = COMMA
	case ';':
		tok.Kind = SEMI
	case ':':
		tok.Kind = COLON
	case '=':
		tok.Kind = EQ
	case '&':
		tok.Kind = AMP
	case '|':
		tok.Kind = PIPE
	case '\'':
		tok.Kind = PRIME
	case '<':
		if l.peek() != '=' {
			return tok, fmt.Errorf("larch: %d:%d: '<' must be followed by '=' (subset)", tok.Line, tok.Col)
		}
		l.advance()
		tok.Kind = SUBSET
	default:
		if !isLetter(c) {
			return tok, fmt.Errorf("larch: %d:%d: unexpected character %q", tok.Line, tok.Col, c)
		}
		start := l.pos - 1
		for l.pos < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		tok.Text = l.src[start:l.pos]
		if keywords[tok.Text] {
			tok.Kind = KEYWORD
		} else {
			tok.Kind = IDENT
		}
	}
	return tok, nil
}
