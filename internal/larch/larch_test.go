package larch

import (
	"strings"
	"testing"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex("ATOMIC PROCEDURE Acquire(VAR m: Mutex) WHEN m = NIL ENSURES m' = SELF")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []Kind{KEYWORD, KEYWORD, IDENT, LPAREN, KEYWORD, IDENT, COLON, IDENT, RPAREN,
		KEYWORD, IDENT, EQ, KEYWORD, KEYWORD, IDENT, PRIME, EQ, KEYWORD, EOF}
	if len(toks) != len(kinds) {
		t.Fatalf("lexed %d tokens, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Fatalf("token %d = %v, want kind %v", i, toks[i], k)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("-- a comment\nSELF -- trailing\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 2 || toks[0].Text != "SELF" {
		t.Fatalf("comments not skipped: %v", toks)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("m < n"); err == nil {
		t.Fatal("bare '<' should be a lex error")
	}
	if _, err := Lex("m ? n"); err == nil {
		t.Fatal("'?' should be a lex error")
	}
}

func TestParsePaperSpec(t *testing.T) {
	doc, err := Parse(SpecSource)
	if err != nil {
		t.Fatal(err)
	}
	wantProcs := []string{
		"Acquire", "Release", "Wait", "Signal", "Broadcast",
		"P", "V", "Alert", "TestAlert", "AlertP", "AlertWait",
	}
	for _, name := range wantProcs {
		if doc.Proc(name) == nil {
			t.Fatalf("procedure %s missing from parsed spec", name)
		}
	}
	// Structural spot checks against the paper.
	acq := doc.Proc("Acquire")
	if !acq.Atomic || acq.When == nil || acq.Ensures == nil || acq.Requires != nil {
		t.Fatalf("Acquire structure wrong: %+v", acq)
	}
	if got := acq.When.String(); got != "(m = NIL)" {
		t.Fatalf("Acquire WHEN = %s", got)
	}
	rel := doc.Proc("Release")
	if rel.Requires == nil {
		t.Fatal("Release must have a REQUIRES clause (and V must not)")
	}
	if doc.Proc("V").Requires != nil {
		t.Fatal("V must not have a REQUIRES clause")
	}
	wait := doc.Proc("Wait")
	if wait.Atomic {
		t.Fatal("Wait is not atomic")
	}
	if len(wait.Composition) != 2 || wait.Composition[0] != "Enqueue" || wait.Composition[1] != "Resume" {
		t.Fatalf("Wait composition = %v", wait.Composition)
	}
	if wait.Action("Enqueue") == nil || wait.Action("Resume") == nil {
		t.Fatal("Wait actions missing")
	}
	aw := doc.Proc("AlertWait")
	if len(aw.Raises) != 1 || aw.Raises[0] != "Alerted" {
		t.Fatalf("AlertWait raises %v", aw.Raises)
	}
	ar := aw.Action("AlertResume")
	if ar == nil || len(ar.Cases) != 2 {
		t.Fatal("AlertResume must have RETURNS and RAISES cases")
	}
	raise, err := findCase(ar.Cases, "Alerted")
	if err != nil {
		t.Fatal(err)
	}
	// The corrected guard and ENSURES.
	if !strings.Contains(raise.When.String(), "m = NIL") {
		t.Fatalf("AlertResume RAISES WHEN lacks m = NIL: %s", raise.When)
	}
	if !strings.Contains(raise.Ensures.String(), "delete(c, SELF)") {
		t.Fatalf("AlertResume RAISES ENSURES lacks c' = delete(c, SELF): %s", raise.Ensures)
	}
	ap := doc.Proc("AlertP")
	if len(ap.Cases) != 2 {
		t.Fatalf("AlertP must have two cases, got %d", len(ap.Cases))
	}
	ta := doc.Proc("TestAlert")
	if ta.Returns == nil || ta.Returns.Name != "b" {
		t.Fatalf("TestAlert RETURNS formal wrong: %+v", ta.Returns)
	}
	// Type and var declarations.
	var typeNames, varNames, excNames []string
	for _, d := range doc.Decls {
		switch dd := d.(type) {
		case *TypeDecl:
			typeNames = append(typeNames, dd.Name)
		case *VarDecl:
			varNames = append(varNames, dd.Name)
		case *ExceptionDecl:
			excNames = append(excNames, dd.Name)
		}
	}
	if strings.Join(typeNames, ",") != "Mutex,Condition,Semaphore" {
		t.Fatalf("types = %v", typeNames)
	}
	if strings.Join(varNames, ",") != "alerts" || strings.Join(excNames, ",") != "Alerted" {
		t.Fatalf("vars = %v, exceptions = %v", varNames, excNames)
	}
}

func TestFormatterRoundTrip(t *testing.T) {
	doc := MustParse(SpecSource)
	var b strings.Builder
	for _, d := range doc.Decls {
		b.WriteString(d.String())
		b.WriteString("\n")
	}
	doc2, err := Parse(b.String())
	if err != nil {
		t.Fatalf("formatter output does not re-parse: %v\n%s", err, b.String())
	}
	if len(doc2.Decls) != len(doc.Decls) {
		t.Fatalf("round trip lost declarations: %d vs %d", len(doc2.Decls), len(doc.Decls))
	}
	// Idempotence: formatting the re-parsed document gives identical text.
	var b2 strings.Builder
	for _, d := range doc2.Decls {
		b2.WriteString(d.String())
		b2.WriteString("\n")
	}
	if b.String() != b2.String() {
		t.Fatal("formatter is not idempotent")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"PROCEDURE",                       // missing name
		"TYPE Mutex Thread INITIALLY NIL", // missing =
		"ATOMIC PROCEDURE F( WHEN x = y",  // unclosed params
		"ATOMIC PROCEDURE F() ENSURES",    // missing expression
		"VAR alerts SET OF Thread",        // missing colon
		"garbage",                         // not a declaration
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Fatalf("no error for %q", src)
		}
	}
}

func TestExprPrecedence(t *testing.T) {
	doc := MustParse("ATOMIC PROCEDURE F(VAR c: Condition) ENSURES (c' = {}) | (c' <= c) & (SELF IN c)")
	e := doc.Proc("F").Ensures
	// | binds loosest: the top node must be |.
	b, ok := e.(Binary)
	if !ok || b.Op != "|" {
		t.Fatalf("top operator = %v, want |", e)
	}
	r, ok := b.R.(Binary)
	if !ok || r.Op != "&" {
		t.Fatalf("right of | = %v, want &", b.R)
	}
}
