package larch

import (
	"fmt"
	"strings"
)

// Document is a parsed specification: a sequence of declarations.
type Document struct {
	Decls []Decl
}

// Proc returns the procedure declaration with the given name, or nil.
func (d *Document) Proc(name string) *ProcDecl {
	for _, decl := range d.Decls {
		if p, ok := decl.(*ProcDecl); ok && p.Name == name {
			return p
		}
	}
	return nil
}

// Decl is a top-level declaration.
type Decl interface {
	decl()
	fmt.Stringer
}

// TypeExpr is a type expression.
type TypeExpr interface {
	typeExpr()
	fmt.Stringer
}

// NamedType is a reference to a type by name (Thread, Mutex, bool, ...).
type NamedType struct{ Name string }

// SetType is SET OF Elem.
type SetType struct{ Elem TypeExpr }

// EnumType is an enumeration like (available, unavailable).
type EnumType struct{ Members []string }

func (NamedType) typeExpr() {}
func (SetType) typeExpr()   {}
func (EnumType) typeExpr()  {}

func (t NamedType) String() string { return t.Name }
func (t SetType) String() string   { return "SET OF " + t.Elem.String() }
func (t EnumType) String() string  { return "(" + strings.Join(t.Members, ", ") + ")" }

// TypeDecl is TYPE Name = Type INITIALLY init.
type TypeDecl struct {
	Name      string
	Type      TypeExpr
	Initially Expr
}

// VarDecl is VAR name: Type INITIALLY init (the specification's global
// "alerts").
type VarDecl struct {
	Name      string
	Type      TypeExpr
	Initially Expr
}

// ExceptionDecl is EXCEPTION Name.
type ExceptionDecl struct{ Name string }

// Param is one formal parameter.
type Param struct {
	Var  bool // VAR parameter (may be modified)
	Name string
	Type TypeExpr
}

func (p Param) String() string {
	s := ""
	if p.Var {
		s = "VAR "
	}
	return s + p.Name + ": " + p.Type.String()
}

// CaseDecl is a RETURNS WHEN ... ENSURES ... or RAISES exc WHEN ... ENSURES
// ... clause pair of a procedure or action with alternative outcomes.
type CaseDecl struct {
	Raises  string // empty for the RETURNS case
	When    Expr   // nil = WHEN TRUE
	Ensures Expr
}

// ActionDecl is ATOMIC ACTION Name with its clauses, within a COMPOSITION
// OF procedure.
type ActionDecl struct {
	Name    string
	When    Expr // nil = WHEN TRUE
	Ensures Expr
	Cases   []CaseDecl // non-empty for actions with RETURNS/RAISES cases
}

// ProcDecl is a (possibly ATOMIC) PROCEDURE declaration.
type ProcDecl struct {
	Atomic      bool
	Name        string
	Params      []Param
	Returns     *Param   // RETURNS (b: bool), or nil
	Raises      []string // RAISES {Alerted}
	Composition []string // COMPOSITION OF A; B END, or nil
	Requires    Expr     // nil = REQUIRES TRUE
	Modifies    []string // MODIFIES AT MOST [m, c]
	When        Expr     // nil = WHEN TRUE
	Ensures     Expr
	Cases       []CaseDecl    // for atomic procedures with RETURNS/RAISES cases
	Actions     []*ActionDecl // the named actions of a composition
}

// Action returns the named ATOMIC ACTION of the procedure, or nil.
func (p *ProcDecl) Action(name string) *ActionDecl {
	for _, a := range p.Actions {
		if a.Name == name {
			return a
		}
	}
	return nil
}

func (*TypeDecl) decl()      {}
func (*VarDecl) decl()       {}
func (*ExceptionDecl) decl() {}
func (*ProcDecl) decl()      {}

// Expr is a predicate or term.
type Expr interface {
	expr()
	fmt.Stringer
}

// Ident is a (possibly primed) reference to a formal, global variable, enum
// member or return formal. m is the pre-state value; m' (Primed) the
// post-state value.
type Ident struct {
	Name   string
	Primed bool
}

// SelfExpr is SELF, the executing thread.
type SelfExpr struct{}

// NilExpr is NIL, the unheld-mutex value.
type NilExpr struct{}

// EmptySet is {}.
type EmptySet struct{}

// Binary is L op R with op one of "=", "&", "|", "<=" (subset), "IN".
type Binary struct {
	Op   string
	L, R Expr
}

// Not is NOT X.
type Not struct{ X Expr }

// Call is fn(args...): insert(c, SELF), delete(alerts, SELF).
type Call struct {
	Fn   string
	Args []Expr
}

// Unchanged is UNCHANGED [x, y]: each listed variable has equal pre and
// post values.
type Unchanged struct{ Names []string }

func (Ident) expr()     {}
func (SelfExpr) expr()  {}
func (NilExpr) expr()   {}
func (EmptySet) expr()  {}
func (Binary) expr()    {}
func (Not) expr()       {}
func (Call) expr()      {}
func (Unchanged) expr() {}

func (e Ident) String() string {
	if e.Primed {
		return e.Name + "'"
	}
	return e.Name
}
func (SelfExpr) String() string { return "SELF" }
func (NilExpr) String() string  { return "NIL" }
func (EmptySet) String() string { return "{}" }
func (e Binary) String() string {
	return "(" + e.L.String() + " " + e.Op + " " + e.R.String() + ")"
}
func (e Not) String() string { return "NOT " + e.X.String() }
func (e Call) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return e.Fn + "(" + strings.Join(parts, ", ") + ")"
}
func (e Unchanged) String() string {
	return "UNCHANGED [" + strings.Join(e.Names, ", ") + "]"
}

func (d *TypeDecl) String() string {
	return "TYPE " + d.Name + " = " + d.Type.String() + " INITIALLY " + d.Initially.String()
}
func (d *VarDecl) String() string {
	return "VAR " + d.Name + ": " + d.Type.String() + " INITIALLY " + d.Initially.String()
}
func (d *ExceptionDecl) String() string { return "EXCEPTION " + d.Name }

func (p *ProcDecl) String() string {
	var b strings.Builder
	if p.Atomic {
		b.WriteString("ATOMIC ")
	}
	b.WriteString("PROCEDURE " + p.Name + "(")
	for i, pa := range p.Params {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(pa.String())
	}
	b.WriteString(")")
	if p.Returns != nil {
		b.WriteString(" RETURNS (" + p.Returns.String() + ")")
	}
	if len(p.Raises) > 0 {
		b.WriteString(" RAISES {" + strings.Join(p.Raises, ", ") + "}")
	}
	if len(p.Composition) > 0 {
		b.WriteString(" =\n  COMPOSITION OF " + strings.Join(p.Composition, "; ") + " END")
	}
	if p.Requires != nil {
		b.WriteString("\n  REQUIRES " + p.Requires.String())
	}
	if len(p.Modifies) > 0 {
		b.WriteString("\n  MODIFIES AT MOST [" + strings.Join(p.Modifies, ", ") + "]")
	}
	if p.When != nil {
		b.WriteString("\n  WHEN " + p.When.String())
	}
	if p.Ensures != nil {
		b.WriteString("\n  ENSURES " + p.Ensures.String())
	}
	for _, c := range p.Cases {
		b.WriteString("\n  " + c.String())
	}
	for _, a := range p.Actions {
		b.WriteString("\n  ATOMIC ACTION " + a.Name)
		if a.When != nil {
			b.WriteString("\n    WHEN " + a.When.String())
		}
		if a.Ensures != nil {
			b.WriteString("\n    ENSURES " + a.Ensures.String())
		}
		for _, c := range a.Cases {
			b.WriteString("\n    " + c.String())
		}
	}
	return b.String()
}

func (c CaseDecl) String() string {
	var b strings.Builder
	if c.Raises == "" {
		b.WriteString("RETURNS")
	} else {
		b.WriteString("RAISES " + c.Raises)
	}
	if c.When != nil {
		b.WriteString(" WHEN " + c.When.String())
	}
	if c.Ensures != nil {
		b.WriteString(" ENSURES " + c.Ensures.String())
	}
	return b.String()
}
