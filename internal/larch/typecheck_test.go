package larch

import (
	"strings"
	"testing"
)

func TestCheckPaperSpecIsWellTyped(t *testing.T) {
	if errs := Check(Spec()); len(errs) != 0 {
		for _, e := range errs {
			t.Error(e)
		}
		t.Fatal("the paper's specification should type-check")
	}
}

// checkOne parses src with a standard prelude and returns the errors.
func checkOne(t *testing.T, src string) []error {
	t.Helper()
	prelude := `
TYPE Mutex = Thread INITIALLY NIL
TYPE Condition = SET OF Thread INITIALLY {}
TYPE Semaphore = (available, unavailable) INITIALLY available
VAR alerts: SET OF Thread INITIALLY {}
EXCEPTION Alerted
`
	doc, err := Parse(prelude + src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Check(doc)
}

func wantError(t *testing.T, errs []error, fragment string) {
	t.Helper()
	for _, e := range errs {
		if strings.Contains(e.Error(), fragment) {
			return
		}
	}
	t.Fatalf("no error containing %q in %v", fragment, errs)
}

func TestCheckUnboundIdentifier(t *testing.T) {
	errs := checkOne(t, `ATOMIC PROCEDURE F(VAR m: Mutex) ENSURES frob = NIL`)
	wantError(t, errs, "unbound identifier frob")
}

func TestCheckPrimedInWhen(t *testing.T) {
	errs := checkOne(t, `ATOMIC PROCEDURE F(VAR m: Mutex) WHEN m' = NIL ENSURES m' = SELF`)
	wantError(t, errs, "single-state clause but mentions m'")
}

func TestCheckPrimedNonVarParam(t *testing.T) {
	errs := checkOne(t, `ATOMIC PROCEDURE F(m: Mutex) ENSURES m' = SELF`)
	wantError(t, errs, "may not modify")
}

func TestCheckModifiesUnknown(t *testing.T) {
	errs := checkOne(t, `ATOMIC PROCEDURE F(VAR m: Mutex) MODIFIES AT MOST [ q ] ENSURES m' = NIL`)
	wantError(t, errs, "MODIFIES AT MOST names q")
}

func TestCheckTypeMismatchEquals(t *testing.T) {
	errs := checkOne(t, `ATOMIC PROCEDURE F(VAR m: Mutex; VAR c: Condition) ENSURES m' = c`)
	wantError(t, errs, "= compares Thread with SET OF Thread")
}

func TestCheckINOperands(t *testing.T) {
	errs := checkOne(t, `ATOMIC PROCEDURE F(VAR c: Condition) ENSURES c IN c'`)
	wantError(t, errs, "IN applied to")
}

func TestCheckSubsetOperands(t *testing.T) {
	errs := checkOne(t, `ATOMIC PROCEDURE F(VAR m: Mutex) ENSURES m' <= m`)
	wantError(t, errs, "<= (subset) applied to")
}

func TestCheckInsertArguments(t *testing.T) {
	errs := checkOne(t, `ATOMIC PROCEDURE F(VAR c: Condition) ENSURES c' = insert(SELF, c)`)
	wantError(t, errs, "insert's first argument")
}

func TestCheckUnknownFunction(t *testing.T) {
	errs := checkOne(t, `ATOMIC PROCEDURE F(VAR c: Condition) ENSURES c' = munge(c, SELF)`)
	wantError(t, errs, "unknown function munge")
}

func TestCheckNonBooleanClause(t *testing.T) {
	errs := checkOne(t, `ATOMIC PROCEDURE F(VAR c: Condition) ENSURES insert(c, SELF)`)
	wantError(t, errs, "ENSURES clause has type SET OF Thread")
}

func TestCheckRaisesUndeclared(t *testing.T) {
	errs := checkOne(t, `ATOMIC PROCEDURE F(VAR s: Semaphore) RAISES {Bogus}
  RETURNS WHEN s = available ENSURES s' = unavailable
  RAISES Bogus WHEN SELF IN alerts ENSURES UNCHANGED [ s ]`)
	wantError(t, errs, "undeclared exception Bogus")
}

func TestCheckRaisesCaseNotInHeader(t *testing.T) {
	errs := checkOne(t, `ATOMIC PROCEDURE F(VAR s: Semaphore)
  RAISES Alerted WHEN SELF IN alerts ENSURES UNCHANGED [ s ]`)
	wantError(t, errs, "not in the procedure's RAISES set")
}

func TestCheckCompositionMismatch(t *testing.T) {
	errs := checkOne(t, `PROCEDURE F(VAR m: Mutex; VAR c: Condition) = COMPOSITION OF A; B END
  ATOMIC ACTION A ENSURES m' = NIL
  ATOMIC ACTION C ENSURES m' = SELF`)
	wantError(t, errs, "COMPOSITION OF")
}

func TestCheckAtomicWithActions(t *testing.T) {
	errs := checkOne(t, `ATOMIC PROCEDURE F(VAR m: Mutex)
  ATOMIC ACTION A ENSURES m' = NIL`)
	wantError(t, errs, "cannot contain ATOMIC ACTIONs")
}

func TestCheckDuplicateParam(t *testing.T) {
	errs := checkOne(t, `ATOMIC PROCEDURE F(VAR m: Mutex; VAR m: Mutex) ENSURES m' = NIL`)
	wantError(t, errs, "parameter m repeated")
}

func TestCheckDuplicateProcedure(t *testing.T) {
	errs := checkOne(t, `ATOMIC PROCEDURE F(VAR m: Mutex) ENSURES m' = NIL
ATOMIC PROCEDURE F(VAR m: Mutex) ENSURES m' = NIL`)
	wantError(t, errs, "procedure declared twice")
}

func TestCheckInitiallyMismatch(t *testing.T) {
	doc, err := Parse(`TYPE Mutex = Thread INITIALLY {}`)
	if err != nil {
		t.Fatal(err)
	}
	wantError(t, Check(doc), "INITIALLY value {} has type SET OF Thread, want Thread")
}

func TestCheckUnknownTypeInParam(t *testing.T) {
	errs := checkOne(t, `ATOMIC PROCEDURE F(VAR m: Mootex) ENSURES SELF = SELF`)
	wantError(t, errs, "unknown type Mootex")
}

func TestCheckUnchangedInWhen(t *testing.T) {
	errs := checkOne(t, `ATOMIC PROCEDURE F(VAR m: Mutex) WHEN UNCHANGED [ m ] ENSURES m' = NIL`)
	wantError(t, errs, "single-state clause but contains UNCHANGED")
}

func TestCheckEnumComparison(t *testing.T) {
	// Comparing a semaphore with an enum member is fine; with a thread is
	// not.
	if errs := checkOne(t, `ATOMIC PROCEDURE F(VAR s: Semaphore) WHEN s = available ENSURES s' = unavailable`); len(errs) != 0 {
		t.Fatalf("valid enum comparison rejected: %v", errs)
	}
	errs := checkOne(t, `ATOMIC PROCEDURE F(VAR s: Semaphore) ENSURES s' = SELF`)
	wantError(t, errs, "= compares enumeration with Thread")
}
