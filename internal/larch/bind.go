package larch

import (
	"fmt"

	"threads/internal/spec"
)

// CheckAction verifies that the labeled transition pre → post satisfies the
// parsed specification: the procedure's REQUIRES and the relevant WHEN hold
// in pre, the relevant ENSURES holds of (pre, post), and nothing outside
// the MODIFIES AT MOST frame changed. It is the bridge between the
// hand-coded executable specification (internal/spec) and the paper's text
// (SpecSource): the two are property-tested to agree through this function.
//
// Only the printed (final) specification is in SpecSource, so
// AlertResumeRaise actions with other variants are rejected.
func CheckAction(doc *Document, a spec.Action, pre, post *spec.State) error {
	env := NewEnv(pre, post, a.Self())
	var (
		proc    *ProcDecl
		when    Expr
		ensures Expr
		reqs    Expr
		frame   []string
	)
	bindProc := func(name string) error {
		proc = doc.Proc(name)
		if proc == nil {
			return fmt.Errorf("larch: specification has no procedure %s", name)
		}
		reqs = proc.Requires
		frame = proc.Modifies
		when = proc.When
		ensures = proc.Ensures
		return nil
	}
	switch act := a.(type) {
	case spec.Acquire:
		if err := bindProc("Acquire"); err != nil {
			return err
		}
		env.Bind("m", MutexRef(act.M))
	case spec.Release:
		if err := bindProc("Release"); err != nil {
			return err
		}
		env.Bind("m", MutexRef(act.M))
	case spec.Enqueue:
		if err := bindProc("Wait"); err != nil {
			return err
		}
		env.Bind("m", MutexRef(act.M)).Bind("c", CondRef(act.C))
		step := proc.Action("Enqueue")
		if step == nil {
			return fmt.Errorf("larch: Wait has no Enqueue action")
		}
		when, ensures = step.When, step.Ensures
	case spec.Resume:
		if err := bindProc("Wait"); err != nil {
			return err
		}
		env.Bind("m", MutexRef(act.M)).Bind("c", CondRef(act.C))
		step := proc.Action("Resume")
		if step == nil {
			return fmt.Errorf("larch: Wait has no Resume action")
		}
		when, ensures = step.When, step.Ensures
		reqs = nil // the REQUIRES belongs to the first action of the composition
	case spec.Signal:
		if err := bindProc("Signal"); err != nil {
			return err
		}
		env.Bind("c", CondRef(act.C))
	case spec.Broadcast:
		if err := bindProc("Broadcast"); err != nil {
			return err
		}
		env.Bind("c", CondRef(act.C))
	case spec.P:
		if err := bindProc("P"); err != nil {
			return err
		}
		env.Bind("s", SemRef(act.S))
	case spec.V:
		if err := bindProc("V"); err != nil {
			return err
		}
		env.Bind("s", SemRef(act.S))
	case spec.Alert:
		if err := bindProc("Alert"); err != nil {
			return err
		}
		env.BindScalar("t", ThreadVal(act.Target))
	case spec.TestAlert:
		if err := bindProc("TestAlert"); err != nil {
			return err
		}
		env.BindScalar("b", BoolVal(act.Result))
	case spec.AlertPReturn:
		if err := bindProc("AlertP"); err != nil {
			return err
		}
		env.Bind("s", SemRef(act.S))
		c, err := findCase(proc.Cases, "")
		if err != nil {
			return err
		}
		when, ensures = c.When, c.Ensures
	case spec.AlertPRaise:
		if err := bindProc("AlertP"); err != nil {
			return err
		}
		env.Bind("s", SemRef(act.S))
		c, err := findCase(proc.Cases, "Alerted")
		if err != nil {
			return err
		}
		when, ensures = c.When, c.Ensures
	case spec.AlertResumeReturn:
		if err := bindProc("AlertWait"); err != nil {
			return err
		}
		env.Bind("m", MutexRef(act.M)).Bind("c", CondRef(act.C))
		step := proc.Action("AlertResume")
		if step == nil {
			return fmt.Errorf("larch: AlertWait has no AlertResume action")
		}
		cs, err := findCase(step.Cases, "")
		if err != nil {
			return err
		}
		when, ensures = cs.When, cs.Ensures
		reqs = nil
	case spec.AlertResumeRaise:
		if act.Variant != spec.VariantFinal {
			return fmt.Errorf("larch: SpecSource is the final specification; cannot check variant %s", act.Variant)
		}
		if err := bindProc("AlertWait"); err != nil {
			return err
		}
		env.Bind("m", MutexRef(act.M)).Bind("c", CondRef(act.C))
		step := proc.Action("AlertResume")
		if step == nil {
			return fmt.Errorf("larch: AlertWait has no AlertResume action")
		}
		cs, err := findCase(step.Cases, "Alerted")
		if err != nil {
			return err
		}
		when, ensures = cs.When, cs.Ensures
		reqs = nil
	default:
		return fmt.Errorf("larch: no binding for action type %T", a)
	}

	// REQUIRES and WHEN are single-state predicates over the pre state;
	// unprimed identifiers already denote pre-state values in the Env.
	if reqs != nil {
		ok, err := env.EvalBool(reqs)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("larch: %s: REQUIRES %s does not hold in the pre state", a, reqs)
		}
	}
	if when != nil {
		ok, err := env.EvalBool(when)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("larch: %s: WHEN %s does not hold in the pre state", a, when)
		}
	}
	if ensures != nil {
		ok, err := env.EvalBool(ensures)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("larch: %s: ENSURES %s does not hold", a, ensures)
		}
	}
	return checkFrame(env, frame, pre, post, a)
}

func findCase(cases []CaseDecl, raises string) (CaseDecl, error) {
	for _, c := range cases {
		if c.Raises == raises {
			return c, nil
		}
	}
	return CaseDecl{}, fmt.Errorf("larch: no %q case", raises)
}

// checkFrame verifies MODIFIES AT MOST: every object of the universe not
// named in the frame has equal pre and post values.
func checkFrame(env *Env, frame []string, pre, post *spec.State, a spec.Action) error {
	allowed := map[ObjKind]map[int]bool{
		ObjMutex: {}, ObjCond: {}, ObjSem: {}, ObjAlerts: {},
	}
	for _, name := range frame {
		ref, ok := env.Objects[name]
		if !ok {
			return fmt.Errorf("larch: MODIFIES names unbound variable %s", name)
		}
		switch ref.Kind {
		case ObjMutex:
			allowed[ObjMutex][int(ref.Mutex)] = true
		case ObjCond:
			allowed[ObjCond][int(ref.Cond)] = true
		case ObjSem:
			allowed[ObjSem][int(ref.Sem)] = true
		case ObjAlerts:
			allowed[ObjAlerts][0] = true
		}
	}
	for _, m := range mutexUniverse(pre, post) {
		if allowed[ObjMutex][int(m)] {
			continue
		}
		if pre.Mutex(m) != post.Mutex(m) {
			return fmt.Errorf("larch: %s modified m%d outside MODIFIES AT MOST %v", a, m, frame)
		}
	}
	for _, c := range condUniverse(pre, post) {
		if allowed[ObjCond][int(c)] {
			continue
		}
		if !pre.Conds[c].Equal(post.Conds[c]) {
			return fmt.Errorf("larch: %s modified c%d outside MODIFIES AT MOST %v", a, c, frame)
		}
	}
	for _, s := range semUniverse(pre, post) {
		if allowed[ObjSem][int(s)] {
			continue
		}
		if pre.SemAvailable(s) != post.SemAvailable(s) {
			return fmt.Errorf("larch: %s modified s%d outside MODIFIES AT MOST %v", a, s, frame)
		}
	}
	if !allowed[ObjAlerts][0] && !pre.Alerts.Equal(post.Alerts) {
		return fmt.Errorf("larch: %s modified alerts outside MODIFIES AT MOST %v", a, frame)
	}
	return nil
}

func mutexUniverse(pre, post *spec.State) []spec.MutexID {
	seen := map[spec.MutexID]bool{}
	for m := range pre.Mutexes {
		seen[m] = true
	}
	for m := range post.Mutexes {
		seen[m] = true
	}
	out := make([]spec.MutexID, 0, len(seen))
	for m := range seen {
		out = append(out, m)
	}
	return out
}

func condUniverse(pre, post *spec.State) []spec.CondID {
	seen := map[spec.CondID]bool{}
	for c := range pre.Conds {
		seen[c] = true
	}
	for c := range post.Conds {
		seen[c] = true
	}
	out := make([]spec.CondID, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	return out
}

func semUniverse(pre, post *spec.State) []spec.SemID {
	seen := map[spec.SemID]bool{}
	for s := range pre.Sems {
		seen[s] = true
	}
	for s := range post.Sems {
		seen[s] = true
	}
	out := make([]spec.SemID, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	return out
}
