package larch

import (
	"fmt"
	"strings"

	"threads/internal/spec"
)

// alertWaitFinal is the AlertWait declaration as printed in the paper (the
// corrected version, identical to the one inside SpecSource).
const alertWaitFinal = `
PROCEDURE AlertWait(VAR m: Mutex; VAR c: Condition) RAISES {Alerted} = COMPOSITION OF Enqueue; AlertResume END
  REQUIRES m = SELF
  MODIFIES AT MOST [ m, c, alerts ]
  ATOMIC ACTION Enqueue
    ENSURES (c' = insert(c, SELF)) & (m' = NIL) & UNCHANGED [ alerts ]
  ATOMIC ACTION AlertResume
    RETURNS WHEN (m = NIL) & NOT (SELF IN c)
      ENSURES (m' = SELF) & UNCHANGED [ c, alerts ]
    RAISES Alerted WHEN (m = NIL) & (SELF IN alerts)
      ENSURES (m' = SELF) & (c' = delete(c, SELF)) & (alerts' = delete(alerts, SELF))
`

// alertWaitNoMNil is the first released specification of AlertWait: the
// RAISES WHEN clause lacks "m = NIL &". "That this presented a problem was
// discovered in less than an hour by someone with no prior knowledge of
// either the interface or the specification technique." (§Discussion)
const alertWaitNoMNil = `
PROCEDURE AlertWait(VAR m: Mutex; VAR c: Condition) RAISES {Alerted} = COMPOSITION OF Enqueue; AlertResume END
  REQUIRES m = SELF
  MODIFIES AT MOST [ m, c, alerts ]
  ATOMIC ACTION Enqueue
    ENSURES (c' = insert(c, SELF)) & (m' = NIL) & UNCHANGED [ alerts ]
  ATOMIC ACTION AlertResume
    RETURNS WHEN (m = NIL) & NOT (SELF IN c)
      ENSURES (m' = SELF) & UNCHANGED [ c, alerts ]
    RAISES Alerted WHEN SELF IN alerts
      ENSURES (m' = SELF) & UNCHANGED [ c ] & (alerts' = delete(alerts, SELF))
`

// alertWaitUnchangedC is the version that survived "more than a year of
// use": the RAISES ENSURES requires UNCHANGED [c], so a thread that raises
// Alerted remains a ghost member of the condition variable. (§Discussion;
// found by Greg Nelson.)
const alertWaitUnchangedC = `
PROCEDURE AlertWait(VAR m: Mutex; VAR c: Condition) RAISES {Alerted} = COMPOSITION OF Enqueue; AlertResume END
  REQUIRES m = SELF
  MODIFIES AT MOST [ m, c, alerts ]
  ATOMIC ACTION Enqueue
    ENSURES (c' = insert(c, SELF)) & (m' = NIL) & UNCHANGED [ alerts ]
  ATOMIC ACTION AlertResume
    RETURNS WHEN (m = NIL) & NOT (SELF IN c)
      ENSURES (m' = SELF) & UNCHANGED [ c, alerts ]
    RAISES Alerted WHEN (m = NIL) & (SELF IN alerts)
      ENSURES (m' = SELF) & UNCHANGED [ c ] & (alerts' = delete(alerts, SELF))
`

// SpecSourceVariant returns the full specification text with the AlertWait
// declaration of the given historical variant substituted in. The final
// variant returns SpecSource itself.
func SpecSourceVariant(v spec.Variant) (string, error) {
	var alertWait string
	switch v {
	case spec.VariantFinal:
		return SpecSource, nil
	case spec.VariantNoMNil:
		alertWait = alertWaitNoMNil
	case spec.VariantUnchangedC:
		alertWait = alertWaitUnchangedC
	default:
		return "", fmt.Errorf("larch: unknown variant %v", v)
	}
	// Replace the final AlertWait in SpecSource with the variant's text.
	idx := strings.Index(SpecSource, "PROCEDURE AlertWait")
	if idx < 0 {
		return "", fmt.Errorf("larch: SpecSource has no AlertWait declaration")
	}
	return SpecSource[:idx] + strings.TrimLeft(alertWait, "\n"), nil
}

// SpecVariant parses the specification text for the given variant.
func SpecVariant(v spec.Variant) (*Document, error) {
	if v == spec.VariantFinal {
		return Spec(), nil
	}
	src, err := SpecSourceVariant(v)
	if err != nil {
		return nil, err
	}
	return Parse(src)
}

// CheckActionVariant is CheckAction against the specification text of the
// given historical variant, so the buggy clauses themselves can be
// exercised as parsed text rather than only as hand-coded transitions.
func CheckActionVariant(v spec.Variant, a spec.Action, pre, post *spec.State) error {
	doc, err := SpecVariant(v)
	if err != nil {
		return err
	}
	// AlertResumeRaise is the only variant-dependent action; adjust its
	// tag so the dispatcher accepts it for this document.
	if ar, ok := a.(spec.AlertResumeRaise); ok {
		if ar.Variant != v {
			return fmt.Errorf("larch: action variant %v does not match document variant %v", ar.Variant, v)
		}
		// Rewrite to VariantFinal for dispatch; the clauses evaluated
		// come from the variant document, not from the action tag.
		a = spec.AlertResumeRaise{T: ar.T, M: ar.M, C: ar.C, Variant: spec.VariantFinal}
	}
	return checkActionIn(doc, a, pre, post)
}

// checkActionIn is CheckAction with an explicit document (CheckAction binds
// against it directly; this indirection only exists so the exported entry
// points read clearly).
func checkActionIn(doc *Document, a spec.Action, pre, post *spec.State) error {
	return CheckAction(doc, a, pre, post)
}
