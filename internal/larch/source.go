package larch

// SpecSource is the paper's formal specification of the Threads
// synchronization primitives (SRC Report 20, §Formal Specification),
// transcribed into the ASCII form this package parses:
//
//	x'       for x-post (the value of x in the post state)
//	IN       for set membership (∈)
//	NOT      for negation (¬)
//	<=       for set inclusion (⊆)
//	{}       for the empty set
//
// The AlertWait specification is the corrected (printed) version, with
// "m = NIL &" in the RAISES WHEN clause and "c' = delete(c, SELF)" in its
// ENSURES — both discussed in the paper's Discussion section.
const SpecSource = `
-- Mutex, Acquire, Release
TYPE Mutex = Thread INITIALLY NIL

ATOMIC PROCEDURE Acquire(VAR m: Mutex)
  MODIFIES AT MOST [ m ]
  WHEN m = NIL
  ENSURES m' = SELF

ATOMIC PROCEDURE Release(VAR m: Mutex)
  REQUIRES m = SELF
  MODIFIES AT MOST [ m ]
  ENSURES m' = NIL

-- Condition, Wait, Signal, Broadcast
TYPE Condition = SET OF Thread INITIALLY {}

PROCEDURE Wait(VAR m: Mutex; VAR c: Condition) = COMPOSITION OF Enqueue; Resume END
  REQUIRES m = SELF
  MODIFIES AT MOST [ m, c ]
  ATOMIC ACTION Enqueue
    ENSURES (c' = insert(c, SELF)) & (m' = NIL)
  ATOMIC ACTION Resume
    WHEN (m = NIL) & NOT (SELF IN c)
    ENSURES (m' = SELF) & UNCHANGED [ c ]

ATOMIC PROCEDURE Signal(VAR c: Condition)
  MODIFIES AT MOST [ c ]
  ENSURES (c' = {}) | (c' <= c)

ATOMIC PROCEDURE Broadcast(VAR c: Condition)
  MODIFIES AT MOST [ c ]
  ENSURES c' = {}

-- Semaphore, P, V
TYPE Semaphore = (available, unavailable) INITIALLY available

ATOMIC PROCEDURE P(VAR s: Semaphore)
  MODIFIES AT MOST [ s ]
  WHEN s = available
  ENSURES s' = unavailable

ATOMIC PROCEDURE V(VAR s: Semaphore)
  MODIFIES AT MOST [ s ]
  ENSURES s' = available

-- Alerts, Alerted, TestAlert, AlertP, AlertWait
VAR alerts: SET OF Thread INITIALLY {}
EXCEPTION Alerted

ATOMIC PROCEDURE Alert(t: Thread)
  MODIFIES AT MOST [ alerts ]
  ENSURES alerts' = insert(alerts, t)

ATOMIC PROCEDURE TestAlert() RETURNS (b: bool)
  MODIFIES AT MOST [ alerts ]
  ENSURES (b = (SELF IN alerts)) & (alerts' = delete(alerts, SELF))

ATOMIC PROCEDURE AlertP(VAR s: Semaphore) RAISES {Alerted}
  MODIFIES AT MOST [ s, alerts ]
  RETURNS WHEN s = available
    ENSURES (s' = unavailable) & UNCHANGED [ alerts ]
  RAISES Alerted WHEN SELF IN alerts
    ENSURES (alerts' = delete(alerts, SELF)) & UNCHANGED [ s ]

PROCEDURE AlertWait(VAR m: Mutex; VAR c: Condition) RAISES {Alerted} = COMPOSITION OF Enqueue; AlertResume END
  REQUIRES m = SELF
  MODIFIES AT MOST [ m, c, alerts ]
  ATOMIC ACTION Enqueue
    ENSURES (c' = insert(c, SELF)) & (m' = NIL) & UNCHANGED [ alerts ]
  ATOMIC ACTION AlertResume
    RETURNS WHEN (m = NIL) & NOT (SELF IN c)
      ENSURES (m' = SELF) & UNCHANGED [ c, alerts ]
    RAISES Alerted WHEN (m = NIL) & (SELF IN alerts)
      ENSURES (m' = SELF) & (c' = delete(c, SELF)) & (alerts' = delete(alerts, SELF))
`

// Spec parses SpecSource; the result is cached after the first call.
func Spec() *Document {
	specOnce()
	return specDoc
}

var specDoc *Document

func specOnce() {
	if specDoc == nil {
		specDoc = MustParse(SpecSource)
	}
}
