package larch

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"threads/internal/spec"
)

// evalIn parses a predicate and evaluates it in the given env.
func evalIn(t *testing.T, env *Env, src string) bool {
	t.Helper()
	doc, err := Parse("ATOMIC PROCEDURE F() ENSURES " + src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	b, err := env.EvalBool(doc.Proc("F").Ensures)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return b
}

func TestEvalMutexPredicates(t *testing.T) {
	pre := spec.NewState()
	post := pre.Clone()
	post.SetMutex(1, 5)
	env := NewEnv(pre, post, 5).Bind("m", MutexRef(1))
	for src, want := range map[string]bool{
		"m = NIL":                  true, // pre-state value
		"m' = SELF":                true, // post-state value
		"m' = NIL":                 false,
		"NOT (m' = NIL)":           true,
		"(m = NIL) & (m' = SELF)":  true,
		"(m = SELF) | (m' = SELF)": true,
		"(m = SELF) & (m' = SELF)": false,
	} {
		if got := evalIn(t, env, src); got != want {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestEvalSetPredicates(t *testing.T) {
	pre := spec.NewState()
	pre.Cond(1).Insert(2).Insert(3)
	post := pre.Clone()
	post.Cond(1).Insert(5)
	env := NewEnv(pre, post, 5).Bind("c", CondRef(1))
	for src, want := range map[string]bool{
		"SELF IN c":             false,
		"SELF IN c'":            true,
		"c' = insert(c, SELF)":  true,
		"c = delete(c', SELF)":  true,
		"c <= c'":               true,
		"c' <= c":               false,
		"c' = {}":               false,
		"UNCHANGED [ c ]":       false,
		"UNCHANGED [ alerts ]":  true,
		"(c' = {}) | (c' <= c)": false,
	} {
		if got := evalIn(t, env, src); got != want {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestEvalSemaphorePredicates(t *testing.T) {
	pre := spec.NewState()
	post := pre.Clone()
	post.SetSemAvailable(1, false)
	env := NewEnv(pre, post, 1).Bind("s", SemRef(1))
	for src, want := range map[string]bool{
		"s = available":    true,
		"s' = unavailable": true,
		"s' = available":   false,
		"UNCHANGED [ s ]":  false,
	} {
		if got := evalIn(t, env, src); got != want {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestEvalScalars(t *testing.T) {
	pre := spec.NewState()
	pre.Alerts.Insert(4)
	post := pre.Clone()
	post.Alerts.Delete(4)
	env := NewEnv(pre, post, 4).BindScalar("b", BoolVal(true))
	if !evalIn(t, env, "(b = (SELF IN alerts)) & (alerts' = delete(alerts, SELF))") {
		t.Fatal("TestAlert ENSURES should hold")
	}
	env2 := NewEnv(pre, post, 4).BindScalar("b", BoolVal(false))
	if evalIn(t, env2, "b = (SELF IN alerts)") {
		t.Fatal("wrong result accepted")
	}
}

func TestEvalUnboundIdentifier(t *testing.T) {
	env := NewEnv(spec.NewState(), spec.NewState(), 1)
	doc := MustParse("ATOMIC PROCEDURE F() ENSURES frob = NIL")
	if _, err := env.EvalBool(doc.Proc("F").Ensures); err == nil || !strings.Contains(err.Error(), "unbound") {
		t.Fatalf("unbound identifier not reported: %v", err)
	}
}

// randomState builds a small random abstract state.
func randomState(r *rand.Rand) *spec.State {
	s := spec.NewState()
	if r.Intn(2) == 0 {
		s.SetMutex(1, spec.ThreadID(r.Intn(3)+1))
	}
	for t := 1; t <= 4; t++ {
		if r.Intn(3) == 0 {
			s.Cond(1).Insert(spec.ThreadID(t))
		}
		if r.Intn(3) == 0 {
			s.Alerts.Insert(spec.ThreadID(t))
		}
	}
	s.SetSemAvailable(1, r.Intn(2) == 0)
	return s
}

// TestQuickAgreementWithHandCodedSpec is the central cross-validation: over
// random pre-states, the parsed paper specification and the hand-coded
// executable specification (internal/spec) agree on every action's WHEN,
// and applying the hand-coded transition always yields a post-state the
// parsed ENSURES accepts (including the MODIFIES frame).
func TestQuickAgreementWithHandCodedSpec(t *testing.T) {
	doc := Spec()
	actionsFor := func(self spec.ThreadID) []spec.Action {
		return []spec.Action{
			spec.Acquire{T: self, M: 1},
			spec.Release{T: self, M: 1},
			spec.Enqueue{T: self, M: 1, C: 1},
			spec.Resume{T: self, M: 1, C: 1},
			spec.Broadcast{T: self, C: 1},
			spec.P{T: self, S: 1},
			spec.V{T: self, S: 1},
			spec.Alert{T: self, Target: 2},
			spec.AlertPReturn{T: self, S: 1},
			spec.AlertPRaise{T: self, S: 1},
			spec.AlertResumeReturn{T: self, M: 1, C: 1},
			spec.AlertResumeRaise{T: self, M: 1, C: 1, Variant: spec.VariantFinal},
		}
	}
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pre := randomState(r)
		self := spec.ThreadID(r.Intn(3) + 1)
		for _, a := range actionsFor(self) {
			// WHEN agreement: the parsed guard and the hand-coded guard
			// coincide on the pre-state.
			larchWhen, err := whenOf(doc, a, pre)
			if err != nil {
				t.Errorf("whenOf(%s): %v", a, err)
				return false
			}
			if larchWhen != a.When(pre) {
				t.Errorf("WHEN disagreement for %s in %s: larch=%v hand=%v", a, pre, larchWhen, a.When(pre))
				return false
			}
			// ENSURES agreement: the hand-coded transition satisfies the
			// parsed two-state predicate (only for transitions that are
			// legal: REQUIRES and WHEN hold).
			if a.Requires(pre) != nil || !a.When(pre) {
				continue
			}
			post := pre.Clone()
			a.Apply(post)
			if err := CheckAction(doc, a, pre, post); err != nil {
				t.Errorf("hand-coded transition rejected by parsed spec: %v", err)
				return false
			}
		}
		// Signal: every enumerated outcome satisfies the parsed ENSURES.
		sig := spec.Signal{T: self, C: 1}
		for _, post := range sig.Outcomes(pre) {
			if err := CheckAction(doc, sig, pre, post); err != nil {
				t.Errorf("Signal outcome rejected: %v", err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

// whenOf evaluates the parsed specification's WHEN guard for the action.
func whenOf(doc *Document, a spec.Action, pre *spec.State) (bool, error) {
	// Evaluate against an unchanged post-state; WHEN only reads pre.
	err := CheckAction(doc, a, pre, pre.Clone())
	if err == nil {
		return true, nil
	}
	msg := err.Error()
	if strings.Contains(msg, "WHEN") && strings.Contains(msg, "does not hold") {
		return false, nil
	}
	// The guard held but ENSURES failed on the identity transition (or a
	// REQUIRES failed, which callers filter separately): WHEN itself is
	// true for ENSURES failures, indeterminate for REQUIRES ones.
	if strings.Contains(msg, "REQUIRES") {
		// Treat as enabled: hand-coded When for these actions is also
		// unconditional.
		return a.When(pre), nil
	}
	return true, nil
}

// TestCheckActionRejectsBadTransitions: corrupted post-states violate the
// parsed ENSURES or frame.
func TestCheckActionRejectsBadTransitions(t *testing.T) {
	doc := Spec()
	pre := spec.NewState()
	a := spec.Acquire{T: 1, M: 1}

	// Wrong ENSURES: mutex ends NIL.
	if err := CheckAction(doc, a, pre, pre.Clone()); err == nil {
		t.Fatal("Acquire with unchanged mutex accepted")
	}
	// Wrong holder.
	bad := pre.Clone()
	bad.SetMutex(1, 9)
	if err := CheckAction(doc, a, pre, bad); err == nil {
		t.Fatal("Acquire by t1 ending with holder t9 accepted")
	}
	// Frame violation: Acquire also touched a semaphore.
	sneaky := pre.Clone()
	sneaky.SetMutex(1, 1)
	sneaky.SetSemAvailable(3, false)
	err := CheckAction(doc, a, pre, sneaky)
	if err == nil || !strings.Contains(err.Error(), "MODIFIES AT MOST") {
		t.Fatalf("frame violation not detected: %v", err)
	}
	// WHEN violation: Acquire on a held mutex.
	held := spec.NewState()
	held.SetMutex(1, 2)
	post := held.Clone()
	post.SetMutex(1, 1)
	err = CheckAction(doc, a, held, post)
	if err == nil || !strings.Contains(err.Error(), "WHEN") {
		t.Fatalf("WHEN violation not detected: %v", err)
	}
}

// TestSpecSourceMatchesPaperSubtleties verifies the two load-bearing details
// the paper's Discussion calls out, as they appear in the embedded source.
func TestSpecSourceMatchesPaperSubtleties(t *testing.T) {
	doc := Spec()
	// 1. Signal's ENSURES is the weak (c' = {}) | (c' <= c).
	sig := doc.Proc("Signal").Ensures.String()
	if !strings.Contains(sig, "{}") || !strings.Contains(sig, "<=") {
		t.Fatalf("Signal ENSURES = %s", sig)
	}
	// 2. AlertP's cases overlap: with s available and SELF alerted both
	// WHENs evaluate true.
	pre := spec.NewState()
	pre.Alerts.Insert(1)
	ap := doc.Proc("AlertP")
	env := NewEnv(pre, pre.Clone(), 1).Bind("s", SemRef(1))
	for _, c := range ap.Cases {
		ok, err := env.EvalBool(c.When)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("AlertP case %q not enabled in the overlap state", c.Raises)
		}
	}
}
