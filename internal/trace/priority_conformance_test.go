package trace

import (
	"runtime"
	"testing"

	"threads/internal/core"
	"threads/internal/spec"
)

// TestRuntimeConformancePriorityInheritance runs a PI mutex under
// mixed-priority contention with tracing on and replays the merged trace:
// every PriBoost/PriRestore record must start from the effective priority
// the previous record for that thread left (the spec face's REQUIRES), so a
// lost, duplicated or misordered donation surfaces here.
func TestRuntimeConformancePriorityInheritance(t *testing.T) {
	withRuntimeTracing(t, 1<<16, func() {
		var m core.Mutex
		m.SetPriorityInheritance(true)
		defer m.SetPriorityInheritance(false)

		// One deterministic boost/restore episode, so the trace provably
		// contains at least one pair.
		held := make(chan struct{})
		releaseIt := make(chan struct{})
		low := core.ForkPri(1, func() {
			m.Acquire()
			close(held)
			<-releaseIt
			m.Release()
		})
		<-held
		high := core.ForkPri(5, func() {
			m.Acquire()
			m.Release()
		})
		for low.EffectivePriority() != 5 {
			runtime.Gosched()
		}
		close(releaseIt)
		core.Join(low)
		core.Join(high)

		// Then a storm: four priorities hammering the same PI mutex.
		var threads []*core.Thread
		for pri := 1; pri <= 4; pri++ {
			pri := pri
			threads = append(threads, core.ForkPri(pri, func() {
				for i := 0; i < 500; i++ {
					m.Acquire()
					runtime.Gosched()
					m.Release()
				}
			}))
		}
		for _, th := range threads {
			core.Join(th)
		}

		shards, dropped := core.CollectTrace()
		if dropped > 0 {
			t.Fatalf("trace rings overflowed: %d records dropped", dropped)
		}
		evs, err := FromCore(Merge(shards))
		if err != nil {
			t.Fatal(err)
		}
		boosts, restores := 0, 0
		for _, ev := range evs {
			switch ev.Action.(type) {
			case spec.PriBoost:
				boosts++
			case spec.PriRestore:
				restores++
			}
		}
		if boosts == 0 || restores == 0 {
			t.Fatalf("trace has %d boosts, %d restores; want at least one of each", boosts, restores)
		}
		if err := New().Feed(evs); err != nil {
			t.Fatalf("conformance violation: %v", err)
		}
		t.Logf("replayed %d events (%d boosts, %d restores)", len(evs), boosts, restores)
	})
}

// TestCheckerPriorityTransitions pins the checker's priority rules directly.
func TestCheckerPriorityTransitions(t *testing.T) {
	clean := []Event{
		{Seq: 1, Action: spec.PriBoost{T: 1, Old: 0, New: 3}},
		{Seq: 2, Action: spec.PriBoost{T: 1, Old: 3, New: 5}},
		{Seq: 3, Action: spec.PriRestore{T: 1, Old: 5, New: 3}},
		{Seq: 4, Action: spec.PriRestore{T: 1, Old: 3, New: 0}},
		{Seq: 5, Action: spec.PriBoost{T: 2, Old: 0, New: 1}}, // independent thread
	}
	if err := New().Feed(clean); err != nil {
		t.Fatalf("clean boost/restore chain rejected: %v", err)
	}

	for _, tc := range []struct {
		name string
		evs  []Event
	}{
		{"boost from stale old", []Event{
			{Seq: 1, Action: spec.PriBoost{T: 1, Old: 0, New: 3}},
			{Seq: 2, Action: spec.PriBoost{T: 1, Old: 0, New: 5}}, // lost the first boost
		}},
		{"boost that does not raise", []Event{
			{Seq: 1, Action: spec.PriBoost{T: 1, Old: 0, New: 0}},
		}},
		{"restore that does not lower", []Event{
			{Seq: 1, Action: spec.PriBoost{T: 1, Old: 0, New: 3}},
			{Seq: 2, Action: spec.PriRestore{T: 1, Old: 3, New: 3}},
		}},
		{"restore from stale old", []Event{
			{Seq: 1, Action: spec.PriRestore{T: 1, Old: 4, New: 1}},
		}},
	} {
		if err := New().Feed(tc.evs); err == nil {
			t.Errorf("%s: accepted, want violation", tc.name)
		}
	}
}
