package trace

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"threads/internal/baselines"
	"threads/internal/core"
	"threads/internal/spec"
	"threads/internal/workload"
)

// Runtime conformance (experiment E9 on the real implementation): run
// internal/core under load with linearization-point tracing enabled,
// merge the sharded rings by stamp, and replay through the specification's
// state machine. These tests are the -race complement of
// `threadscheck -runtime`.
//
// Tracing state is process-global, so the runtime conformance tests share
// one mutex and never run in parallel with each other.
var runtimeTraceMu sync.Mutex

// collectRuntime drains the rings and replays them into ck, failing the
// test on overflow or a conformance violation. It returns the number of
// events replayed.
func collectRuntime(t *testing.T, ck *Checker) int {
	t.Helper()
	shards, dropped := core.CollectTrace()
	if dropped > 0 {
		t.Fatalf("trace rings overflowed: %d records dropped", dropped)
	}
	evs, err := FromCore(Merge(shards))
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.Feed(evs); err != nil {
		t.Fatalf("conformance violation: %v", err)
	}
	return len(evs)
}

func withRuntimeTracing(t *testing.T, perShardCap int, fn func()) {
	t.Helper()
	runtimeTraceMu.Lock()
	t.Cleanup(runtimeTraceMu.Unlock)
	core.StartTracing(perShardCap)
	t.Cleanup(core.StopTracing)
	fn()
}

func TestRuntimeConformanceProducerConsumer(t *testing.T) {
	withRuntimeTracing(t, 1<<16, func() {
		ck := New()
		total := 0
		for episode := 0; episode < 3; episode++ {
			res := workload.ProducerConsumer(baselines.NewThreadsMonitor(), workload.PCConfig{
				Producers: 3, Consumers: 3, ItemsPerProducer: 500, Capacity: 4,
			})
			if res.Items != 1500 {
				t.Fatalf("episode %d: items = %d, want 1500", episode, res.Items)
			}
			total += collectRuntime(t, ck)
		}
		if total == 0 {
			t.Fatal("no events recorded")
		}
		t.Logf("replayed %d events over 3 episodes", total)
	})
}

func TestRuntimeConformanceMutexContention(t *testing.T) {
	withRuntimeTracing(t, 1<<16, func() {
		ck := New()
		workload.MutexContention(baselines.NewThreadsMonitor(), workload.ContentionConfig{
			Threads: 8, Iters: 2000,
		})
		n := collectRuntime(t, ck)
		if n < 8*2000*2 {
			t.Fatalf("replayed %d events, want at least %d (an Acquire and Release per op)", n, 8*2000*2)
		}
	})
}

func TestRuntimeConformanceAlertStorm(t *testing.T) {
	withRuntimeTracing(t, 1<<16, func() {
		ck := New()
		res := workload.AlertStorm(workload.AlertStormConfig{
			Victims: 4, Stormers: 2, Episodes: 50,
		})
		if res.Raised != 4*50 {
			t.Fatalf("raised = %d, want %d", res.Raised, 4*50)
		}
		n := collectRuntime(t, ck)
		if n == 0 {
			t.Fatal("no events recorded")
		}
		t.Logf("replayed %d events (%d alerts, %d raised, %d normal)", n, res.Alerts, res.Raised, res.Normal)
	})
}

// TestRuntimeConformanceReadersWriters covers Broadcast-heavy traffic.
func TestRuntimeConformanceReadersWriters(t *testing.T) {
	withRuntimeTracing(t, 1<<16, func() {
		ck := New()
		workload.ReadersWriters(baselines.NewThreadsMonitor(), workload.RWConfig{
			Readers: 4, Writers: 2, OpsPerThread: 300,
		})
		if n := collectRuntime(t, ck); n == 0 {
			t.Fatal("no events recorded")
		}
	})
}

// TestClaimRaceNoThinAirResume stresses the generation-stamped wake-claim
// protocol where it is sharpest: threads blocked in AlertWait whose pooled
// waiters are reused every episode, with an alerter and a signaller racing
// their claim CASes on them continuously. The recorded trace is replayed
// through the checker, whose Resume rule (some Signal/Broadcast on c after
// this thread's Enqueue) is exactly the no-wakeup-out-of-thin-air property:
// a claim that leaked onto a reused waiter's later episode would surface
// here as a Resume with no justifying unblock, or a Raise with no pending
// alert. ≥10k episodes, run under -race in `make conformance`.
func TestClaimRaceNoThinAirResume(t *testing.T) {
	const (
		nWaiters = 4
		episodes = 2500 // × nWaiters = 10k alertable wait episodes
	)
	withRuntimeTracing(t, 1<<17, func() {
		var (
			mu   core.Mutex
			cond core.Condition

			raisedN, signalledN atomic.Uint64
			remaining           atomic.Int64
		)
		remaining.Store(nWaiters)
		done := make([]atomic.Bool, nWaiters)
		waiters := make([]*core.Thread, nWaiters)
		for i := 0; i < nWaiters; i++ {
			i := i
			waiters[i] = core.ForkNamed("claimrace-waiter", func() {
				for e := 0; e < episodes; e++ {
					mu.Acquire()
					if cond.AlertWait(&mu) != nil {
						raisedN.Add(1)
					} else {
						signalledN.Add(1)
					}
					mu.Release()
				}
				done[i].Store(true)
				remaining.Add(-1)
				core.TestAlert()
			})
		}
		alerter := core.ForkNamed("claimrace-alerter", func() {
			for remaining.Load() > 0 {
				for i, w := range waiters {
					if !done[i].Load() && !core.AlertPending(w) {
						core.Alert(w)
					}
				}
				runtime.Gosched()
			}
		})
		signaller := core.ForkNamed("claimrace-signaller", func() {
			// Bounded so the recorded Signal traffic cannot overflow the
			// rings; once it stops, the alerter alone finishes the waiters.
			for n := 0; n < nWaiters*episodes && remaining.Load() > 0; n++ {
				mu.Acquire()
				cond.Signal()
				mu.Release()
				runtime.Gosched()
			}
		})
		for _, w := range waiters {
			core.Join(w)
		}
		core.Join(alerter)
		core.Join(signaller)

		ck := New()
		n := collectRuntime(t, ck)
		if got := raisedN.Load() + signalledN.Load(); got != nWaiters*episodes {
			t.Fatalf("episodes completed = %d, want %d", got, nWaiters*episodes)
		}
		t.Logf("replayed %d events: %d raised, %d signalled", n, raisedN.Load(), signalledN.Load())
	})
}

// TestRuntimeTraceFeedRejectsReplayedSeqs pins Feed's well-formedness
// check: feeding a batch whose seqs do not advance past the previous batch
// must be reported as a trace defect, not replayed into nonsense.
func TestRuntimeTraceFeedRejectsReplayedSeqs(t *testing.T) {
	ck := New()
	evs := []Event{
		{Seq: 1, Action: spec.Acquire{T: 1, M: 1}},
		{Seq: 2, Action: spec.Release{T: 1, M: 1}},
	}
	if err := ck.Feed(evs); err != nil {
		t.Fatalf("clean batch rejected: %v", err)
	}
	if err := ck.Feed(evs); err == nil {
		t.Fatal("replayed batch accepted: Feed must require strictly increasing seqs")
	}
}
