package trace

import (
	"testing"

	"threads/internal/sim"
	"threads/internal/simthreads"
	"threads/internal/spec"
)

// collectTrace runs build(w, k) under tracing and returns the linearized
// action events of the run.
func collectTrace(t *testing.T, seed int64, procs int, build func(w *simthreads.World, k *simthreads.Kernel)) []Event {
	t.Helper()
	var events []Event
	cfg := sim.Config{
		Procs:    procs,
		Seed:     seed,
		Policy:   sim.PolicyRandom,
		MaxSteps: 3_000_000,
		Trace: func(ev sim.Event) {
			if a, ok := ev.Payload.(spec.Action); ok {
				events = append(events, Event{Seq: ev.Seq, Thread: ev.Thread.Name(), Action: a})
			}
		},
	}
	w, k := simthreads.NewWorld(cfg)
	build(w, k)
	if err := k.Run(); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return events
}

// TestConformanceMutexContention (E9): heavy mutex contention linearizes to
// a spec-conformant sequence on every seed.
func TestConformanceMutexContention(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		events := collectTrace(t, seed, 4, func(w *simthreads.World, k *simthreads.Kernel) {
			m := w.NewMutex()
			for i := 0; i < 4; i++ {
				k.Spawn("", func(e *sim.Env) {
					for n := 0; n < 20; n++ {
						m.Acquire(e)
						e.Work(3)
						m.Release(e)
					}
				})
			}
		})
		if len(events) == 0 {
			t.Fatal("no events traced")
		}
		if n, err := CheckAll(events); err != nil {
			t.Fatalf("seed %d: after %d conforming events: %v", seed, n, err)
		}
	}
}

// TestConformanceProducerConsumer (E9): the full Wait/Signal protocol with
// racing producers and consumers conforms on every seed.
func TestConformanceProducerConsumer(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		events := collectTrace(t, seed, 4, func(w *simthreads.World, k *simthreads.Kernel) {
			m := w.NewMutex()
			nonEmpty := w.NewCondition()
			nonFull := w.NewCondition()
			var buf, produced, consumed sim.Word
			const total, capacity = 30, 3
			for i := 0; i < 2; i++ {
				k.Spawn("producer", func(e *sim.Env) {
					for {
						m.Acquire(e)
						if e.Load(&produced) == total {
							m.Release(e)
							nonEmpty.Broadcast(e)
							return
						}
						for e.Load(&buf) == capacity {
							nonFull.Wait(e, m)
						}
						if e.Load(&produced) == total {
							m.Release(e)
							nonEmpty.Broadcast(e)
							return
						}
						e.Add(&buf, 1)
						e.Add(&produced, 1)
						m.Release(e)
						nonEmpty.Signal(e)
					}
				})
			}
			for i := 0; i < 2; i++ {
				k.Spawn("consumer", func(e *sim.Env) {
					for {
						m.Acquire(e)
						for e.Load(&buf) == 0 {
							if e.Load(&consumed) == total {
								m.Release(e)
								nonEmpty.Broadcast(e)
								return
							}
							nonEmpty.Wait(e, m)
						}
						e.Add(&buf, ^uint64(0))
						e.Add(&consumed, 1)
						done := e.Load(&consumed) == total
						m.Release(e)
						nonFull.Signal(e)
						if done {
							nonEmpty.Broadcast(e)
							return
						}
					}
				})
			}
		})
		if n, err := CheckAll(events); err != nil {
			t.Fatalf("seed %d: after %d conforming events: %v", seed, n, err)
		}
	}
}

// TestConformanceAlerts (E9): alerting mixed with waits and semaphores
// conforms on every seed.
func TestConformanceAlerts(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		events := collectTrace(t, seed, 3, func(w *simthreads.World, k *simthreads.Kernel) {
			m := w.NewMutex()
			c := w.NewCondition()
			s := w.NewSemaphore()
			var stop sim.Word
			alertee := k.Spawn("alertee", func(e *sim.Env) {
				m.Acquire(e)
				for e.Load(&stop) == 0 {
					if c.AlertWait(e, m) {
						break
					}
				}
				m.Release(e)
			})
			semWaiter := k.Spawn("sem-waiter", func(e *sim.Env) {
				s.P(e)
				if !s.AlertP(e) {
					// acquired: release for symmetry
					s.V(e)
				}
				s.V(e)
			})
			k.Spawn("live-waiter", func(e *sim.Env) {
				m.Acquire(e)
				for e.Load(&stop) == 0 {
					c.Wait(e, m)
				}
				m.Release(e)
			})
			k.Spawn("driver", func(e *sim.Env) {
				e.Work(300)
				w.Alert(e, alertee)
				w.Alert(e, semWaiter)
				e.Work(300)
				m.Acquire(e)
				e.Store(&stop, 1)
				m.Release(e)
				for i := 0; i < 20; i++ {
					c.Broadcast(e)
					e.Work(100)
				}
				w.TestAlert(e)
			})
		})
		if n, err := CheckAll(events); err != nil {
			t.Fatalf("seed %d: after %d conforming events: %v", seed, n, err)
		}
	}
}
