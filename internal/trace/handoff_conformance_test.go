package trace

import (
	"testing"

	"threads/internal/baselines"
	"threads/internal/core"
	"threads/internal/workload"
)

// Runtime conformance for direct hand-off (the fairness fix layered on the
// paper's wake-and-retry Release): under HandoffAlways every contended
// Release, V and Signal takes the transfer path, and the recorded stream —
// the releaser's event stamped at its first CAS, the recipient's at the
// second — must replay through the full specification state machine
// exactly like the unmodified protocol. A hand-off whose stamps did not
// certify against concurrent transitions surfaces here as an Acquire of a
// held mutex, a P of an unavailable semaphore, or a Resume with no
// justifying Signal.

// withHandoffAlways pins the hand-off policy for one test.
func withHandoffAlways(t *testing.T) {
	t.Helper()
	prev := core.SetHandoffMode(core.HandoffAlways)
	t.Cleanup(func() { core.SetHandoffMode(prev) })
}

func TestRuntimeConformanceHandoffMutexContention(t *testing.T) {
	withHandoffAlways(t)
	withRuntimeTracing(t, 1<<16, func() {
		ck := New()
		workload.MutexContention(baselines.NewThreadsMonitor(), workload.ContentionConfig{
			Threads: 8, Iters: 2000,
		})
		n := collectRuntime(t, ck)
		if n < 8*2000*2 {
			t.Fatalf("replayed %d events, want at least %d", n, 8*2000*2)
		}
	})
}

// TestRuntimeConformanceHandoffProducerConsumer is the Wait/Signal-heavy
// case: signallers hold the mutex, so Signals morph waiters onto the mutex
// queue and Releases hand the mutex to them directly — the morphed
// waiter's Resume is emitted with the hand-off's certified stamp, which
// the checker's thin-air rule (some Signal after this thread's Enqueue)
// validates against the Signal stamped before the morph.
func TestRuntimeConformanceHandoffProducerConsumer(t *testing.T) {
	withHandoffAlways(t)
	withRuntimeTracing(t, 1<<16, func() {
		ck := New()
		total := 0
		for episode := 0; episode < 3; episode++ {
			res := workload.ProducerConsumer(baselines.NewThreadsMonitor(), workload.PCConfig{
				Producers: 3, Consumers: 3, ItemsPerProducer: 500, Capacity: 4,
			})
			if res.Items != 1500 {
				t.Fatalf("episode %d: items = %d, want 1500", episode, res.Items)
			}
			total += collectRuntime(t, ck)
		}
		if total == 0 {
			t.Fatal("no events recorded")
		}
		t.Logf("replayed %d events over 3 episodes", total)
	})
}

// TestRuntimeConformanceHandoffAlertStorm mixes transfers with the alert
// claim races: a waiter Alert claims must be skipped by the hand-off pop,
// and an AlertP that receives a transfer must emit its Return with the
// certified stamp.
func TestRuntimeConformanceHandoffAlertStorm(t *testing.T) {
	withHandoffAlways(t)
	withRuntimeTracing(t, 1<<16, func() {
		ck := New()
		res := workload.AlertStorm(workload.AlertStormConfig{
			Victims: 4, Stormers: 2, Episodes: 50,
		})
		if res.Raised != 4*50 {
			t.Fatalf("raised = %d, want %d", res.Raised, 4*50)
		}
		if n := collectRuntime(t, ck); n == 0 {
			t.Fatal("no events recorded")
		}
	})
}

// TestRuntimeConformanceHandoffReadersWriters adds Broadcast traffic,
// which never morphs or hands off per se but interleaves with Releases
// that do.
func TestRuntimeConformanceHandoffReadersWriters(t *testing.T) {
	withHandoffAlways(t)
	withRuntimeTracing(t, 1<<16, func() {
		ck := New()
		workload.ReadersWriters(baselines.NewThreadsMonitor(), workload.RWConfig{
			Readers: 4, Writers: 2, OpsPerThread: 300,
		})
		if n := collectRuntime(t, ck); n == 0 {
			t.Fatal("no events recorded")
		}
	})
}
