package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"threads/internal/spec"
)

func allActionKinds() []Event {
	return evs(
		spec.Acquire{T: 1, M: 2},
		spec.Release{T: 1, M: 2},
		spec.Enqueue{T: 1, M: 2, C: 3},
		spec.Resume{T: 1, M: 2, C: 3},
		spec.Signal{T: 4, C: 3, Removed: []spec.ThreadID{1, 2}},
		spec.Broadcast{T: 4, C: 3},
		spec.P{T: 1, S: 5},
		spec.V{T: 2, S: 5},
		spec.Alert{T: 1, Target: 2},
		spec.TestAlert{T: 2, Result: true},
		spec.AlertPReturn{T: 1, S: 5},
		spec.AlertPRaise{T: 1, S: 5},
		spec.AlertResumeReturn{T: 1, M: 2, C: 3},
		spec.AlertResumeRaise{T: 1, M: 2, C: 3, Variant: spec.VariantFinal},
	)
}

func TestEncodeRoundTripAllKinds(t *testing.T) {
	in := allActionKinds()
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip %d → %d events", len(in), len(out))
	}
	for i := range in {
		if !reflect.DeepEqual(in[i].Action, out[i].Action) {
			t.Fatalf("event %d: %#v != %#v", i, in[i].Action, out[i].Action)
		}
		if in[i].Seq != out[i].Seq {
			t.Fatalf("event %d seq %d != %d", i, in[i].Seq, out[i].Seq)
		}
	}
}

func TestEncodeIsJSONLines(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, evs(spec.Acquire{T: 1, M: 1}, spec.Release{T: 1, M: 1})); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("expected 2 lines, got %d:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], `"kind":"Acquire"`) {
		t.Fatalf("line 0 = %s", lines[0])
	}
	// Every prefix is a valid trace.
	out, err := Read(strings.NewReader(lines[0] + "\n"))
	if err != nil || len(out) != 1 {
		t.Fatalf("prefix read: %v, %d events", err, len(out))
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"kind":"Frobnicate","seq":1}` + "\n")); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := Read(strings.NewReader("not json")); err == nil {
		t.Fatal("non-JSON accepted")
	}
}

// TestQuickEncodeRoundTrip: random legal traces survive the round trip and
// still check cleanly afterwards.
func TestQuickEncodeRoundTrip(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := newLegalTraceGen(r, 3)
		for steps := 0; steps < 120; steps++ {
			g.step()
		}
		var buf bytes.Buffer
		if err := Write(&buf, g.events); err != nil {
			t.Log(err)
			return false
		}
		out, err := Read(&buf)
		if err != nil {
			t.Log(err)
			return false
		}
		if len(out) != len(g.events) {
			return false
		}
		for i := range out {
			if !reflect.DeepEqual(out[i].Action, g.events[i].Action) {
				return false
			}
		}
		if _, err := CheckAll(out); err != nil {
			t.Logf("decoded trace no longer conforms: %v", err)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(31))}); err != nil {
		t.Fatal(err)
	}
}
