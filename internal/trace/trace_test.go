package trace

import (
	"strings"
	"testing"

	"threads/internal/spec"
)

func evs(actions ...spec.Action) []Event {
	out := make([]Event, len(actions))
	for i, a := range actions {
		out[i] = Event{Seq: uint64(i + 1), Action: a}
	}
	return out
}

func TestCleanMutexTrace(t *testing.T) {
	n, err := CheckAll(evs(
		spec.Acquire{T: 1, M: 1},
		spec.Release{T: 1, M: 1},
		spec.Acquire{T: 2, M: 1},
		spec.Release{T: 2, M: 1},
	))
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("applied %d events, want 4", n)
	}
}

func TestDetectsDoubleAcquire(t *testing.T) {
	_, err := CheckAll(evs(
		spec.Acquire{T: 1, M: 1},
		spec.Acquire{T: 2, M: 1},
	))
	if err == nil || !strings.Contains(err.Error(), "WHEN m = NIL") {
		t.Fatalf("double acquire not detected: %v", err)
	}
}

func TestDetectsReleaseByNonHolder(t *testing.T) {
	_, err := CheckAll(evs(
		spec.Acquire{T: 1, M: 1},
		spec.Release{T: 2, M: 1},
	))
	if err == nil || !strings.Contains(err.Error(), "REQUIRES m = SELF") {
		t.Fatalf("bad release not detected: %v", err)
	}
}

func TestCleanWaitSignalTrace(t *testing.T) {
	n, err := CheckAll(evs(
		spec.Acquire{T: 1, M: 1},
		spec.Enqueue{T: 1, M: 1, C: 1},
		spec.Acquire{T: 2, M: 1},
		spec.Release{T: 2, M: 1},
		spec.Signal{T: 2, C: 1, Removed: []spec.ThreadID{1}},
		spec.Resume{T: 1, M: 1, C: 1},
		spec.Release{T: 1, M: 1},
	))
	if err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Fatalf("applied %d, want 7", n)
	}
}

func TestDetectsWakeupFromThinAir(t *testing.T) {
	// Resume with no Signal/Broadcast after the Enqueue: the lost-wakeup
	// dual — a thread left its wait though nothing released it.
	_, err := CheckAll(evs(
		spec.Acquire{T: 1, M: 1},
		spec.Enqueue{T: 1, M: 1, C: 1},
		spec.Resume{T: 1, M: 1, C: 1},
	))
	if err == nil || !strings.Contains(err.Error(), "thin air") {
		t.Fatalf("spontaneous resume not detected: %v", err)
	}
}

func TestSignalBeforeEnqueueDoesNotJustifyResume(t *testing.T) {
	// An unblocking event from *before* the Enqueue must not justify the
	// Resume: its eventcount reading preceded the commit.
	_, err := CheckAll(evs(
		spec.Signal{T: 2, C: 1},
		spec.Acquire{T: 1, M: 1},
		spec.Enqueue{T: 1, M: 1, C: 1},
		spec.Resume{T: 1, M: 1, C: 1},
	))
	if err == nil || !strings.Contains(err.Error(), "thin air") {
		t.Fatalf("stale signal accepted as justification: %v", err)
	}
}

func TestBroadcastJustifiesManyResumes(t *testing.T) {
	_, err := CheckAll(evs(
		spec.Acquire{T: 1, M: 1},
		spec.Enqueue{T: 1, M: 1, C: 1},
		spec.Acquire{T: 2, M: 1},
		spec.Enqueue{T: 2, M: 1, C: 1},
		spec.Broadcast{T: 3, C: 1},
		spec.Resume{T: 1, M: 1, C: 1},
		spec.Release{T: 1, M: 1},
		spec.Resume{T: 2, M: 1, C: 1},
		spec.Release{T: 2, M: 1},
	))
	if err != nil {
		t.Fatal(err)
	}
}

func TestOneSignalMayJustifyManyResumes(t *testing.T) {
	// The E3 behavior: the specification's weak Signal admits several
	// threads resuming after one Signal, and the checker must accept it.
	_, err := CheckAll(evs(
		spec.Acquire{T: 1, M: 1},
		spec.Enqueue{T: 1, M: 1, C: 1},
		spec.Acquire{T: 2, M: 1},
		spec.Enqueue{T: 2, M: 1, C: 1},
		spec.Signal{T: 3, C: 1, Removed: []spec.ThreadID{1}},
		spec.Resume{T: 1, M: 1, C: 1},
		spec.Release{T: 1, M: 1},
		spec.Resume{T: 2, M: 1, C: 1}, // the racer released by the same advance
		spec.Release{T: 2, M: 1},
	))
	if err != nil {
		t.Fatal(err)
	}
}

func TestDetectsSignalRemovingNonMember(t *testing.T) {
	_, err := CheckAll(evs(
		spec.Signal{T: 1, C: 1, Removed: []spec.ThreadID{7}},
	))
	if err == nil || !strings.Contains(err.Error(), "⊆ c") {
		t.Fatalf("bad removal not detected: %v", err)
	}
}

func TestDetectsEnqueueWithoutMutex(t *testing.T) {
	_, err := CheckAll(evs(
		spec.Enqueue{T: 1, M: 1, C: 1},
	))
	if err == nil || !strings.Contains(err.Error(), "REQUIRES m = SELF") {
		t.Fatalf("enqueue without mutex not detected: %v", err)
	}
}

func TestDetectsResumeOnHeldMutex(t *testing.T) {
	_, err := CheckAll(evs(
		spec.Acquire{T: 1, M: 1},
		spec.Enqueue{T: 1, M: 1, C: 1},
		spec.Signal{T: 2, C: 1},
		spec.Acquire{T: 2, M: 1},
		spec.Resume{T: 1, M: 1, C: 1}, // m held by t2
	))
	if err == nil || !strings.Contains(err.Error(), "Resume WHEN m = NIL") {
		t.Fatalf("resume on held mutex not detected: %v", err)
	}
}

func TestSemaphoreTrace(t *testing.T) {
	if _, err := CheckAll(evs(
		spec.P{T: 1, S: 1},
		spec.V{T: 2, S: 1}, // V by a different thread: legal
		spec.P{T: 2, S: 1},
		spec.V{T: 1, S: 1},
	)); err != nil {
		t.Fatal(err)
	}
	_, err := CheckAll(evs(
		spec.P{T: 1, S: 1},
		spec.P{T: 2, S: 1},
	))
	if err == nil || !strings.Contains(err.Error(), "WHEN s = available") {
		t.Fatalf("double P not detected: %v", err)
	}
}

func TestAlertTrace(t *testing.T) {
	if _, err := CheckAll(evs(
		spec.Alert{T: 1, Target: 2},
		spec.TestAlert{T: 2, Result: true},
		spec.TestAlert{T: 2, Result: false},
	)); err != nil {
		t.Fatal(err)
	}
	_, err := CheckAll(evs(
		spec.TestAlert{T: 2, Result: true},
	))
	if err == nil || !strings.Contains(err.Error(), "TestAlert ENSURES") {
		t.Fatalf("wrong TestAlert result not detected: %v", err)
	}
}

func TestAlertWaitRaiseTrace(t *testing.T) {
	// The corrected semantics: the Raise departs c without needing a
	// Signal, consuming the alert; a later Signal then reaches the live
	// waiter.
	if _, err := CheckAll(evs(
		spec.Acquire{T: 1, M: 1},
		spec.Enqueue{T: 1, M: 1, C: 1},
		spec.Acquire{T: 2, M: 1},
		spec.Enqueue{T: 2, M: 1, C: 1},
		spec.Alert{T: 3, Target: 1},
		spec.AlertResumeRaise{T: 1, M: 1, C: 1},
		spec.Release{T: 1, M: 1},
		spec.Signal{T: 3, C: 1, Removed: []spec.ThreadID{2}},
		spec.Resume{T: 2, M: 1, C: 1},
		spec.Release{T: 2, M: 1},
	)); err != nil {
		t.Fatal(err)
	}
	// Raise without a pending alert is a violation.
	_, err := CheckAll(evs(
		spec.Acquire{T: 1, M: 1},
		spec.Enqueue{T: 1, M: 1, C: 1},
		spec.AlertResumeRaise{T: 1, M: 1, C: 1},
	))
	if err == nil || !strings.Contains(err.Error(), "RAISES WHEN SELF IN alerts") {
		t.Fatalf("raise without alert not detected: %v", err)
	}
}

func TestAlertPTrace(t *testing.T) {
	if _, err := CheckAll(evs(
		spec.Alert{T: 1, Target: 2},
		spec.AlertPRaise{T: 2, S: 1},
		spec.P{T: 3, S: 1}, // still available: UNCHANGED [s] held
	)); err != nil {
		t.Fatal(err)
	}
	_, err := CheckAll(evs(
		spec.AlertPRaise{T: 2, S: 1},
	))
	if err == nil {
		t.Fatal("AlertP raise without alert not detected")
	}
}

func TestViolationReportsSeqAndClause(t *testing.T) {
	_, err := CheckAll(evs(
		spec.Acquire{T: 1, M: 1},
		spec.Acquire{T: 2, M: 1},
	))
	v, ok := err.(*Violation)
	if !ok {
		t.Fatalf("error type %T, want *Violation", err)
	}
	if v.Seq != 2 || v.Clause == "" || v.Action == "" {
		t.Fatalf("violation missing context: %+v", v)
	}
}
