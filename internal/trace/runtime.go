package trace

import (
	"fmt"
	"sort"

	"threads/internal/core"
	"threads/internal/spec"
)

// Runtime-trace ingestion: converting internal/core's sharded TraceRecord
// rings into the Event stream the Checker replays. The sharded streams are
// each in ring write order, which is only nearly stamp-sorted — two
// operations can draw stamps and then write to the same shard in opposite
// orders, and distinct shards interleave arbitrarily — so Merge re-sorts the
// concatenation by Seq. Stamps are globally unique (a single fetch-add
// counter), so the sort is a total order and ties cannot arise.

// Merge flattens the per-shard record slices from core.CollectTrace into a
// single stamp-ordered slice.
func Merge(shards [][]core.TraceRecord) []core.TraceRecord {
	var n int
	for _, s := range shards {
		n += len(s)
	}
	out := make([]core.TraceRecord, 0, n)
	for _, s := range shards {
		out = append(out, s...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// FromCore converts stamp-ordered runtime records into checker events.
// Object identities translate positionally: core assigns mutexes,
// semaphores and conditions IDs from one counter, and the spec's MutexID /
// SemID / CondID spaces are independent, so the raw value is used in the
// space the record's kind selects — distinct objects never collide within a
// space. Signal and Broadcast events carry Removed = nil: the runtime does
// not observe which threads a wakeup removes (return from Wait is a hint),
// and the Checker's no-wakeup-out-of-thin-air rule is exactly the check
// Signal's weak postcondition permits. AlertResume.Raise events replay
// against the final specification variant, the one internal/core
// implements.
func FromCore(recs []core.TraceRecord) ([]Event, error) {
	events := make([]Event, 0, len(recs))
	for _, r := range recs {
		var a spec.Action
		t := spec.ThreadID(r.TID)
		switch r.Kind {
		case core.TraceAcquire:
			a = spec.Acquire{T: t, M: spec.MutexID(r.Obj)}
		case core.TraceRelease:
			a = spec.Release{T: t, M: spec.MutexID(r.Obj)}
		case core.TraceEnqueue:
			a = spec.Enqueue{T: t, M: spec.MutexID(r.Obj), C: spec.CondID(r.Obj2)}
		case core.TraceResume:
			a = spec.Resume{T: t, M: spec.MutexID(r.Obj), C: spec.CondID(r.Obj2)}
		case core.TraceSignal:
			a = spec.Signal{T: t, C: spec.CondID(r.Obj)}
		case core.TraceBroadcast:
			a = spec.Broadcast{T: t, C: spec.CondID(r.Obj)}
		case core.TraceP:
			a = spec.P{T: t, S: spec.SemID(r.Obj)}
		case core.TraceV:
			a = spec.V{T: t, S: spec.SemID(r.Obj)}
		case core.TraceAlert:
			a = spec.Alert{T: t, Target: spec.ThreadID(r.Obj2)}
		case core.TraceTestAlert:
			a = spec.TestAlert{T: t, Result: r.Result}
		case core.TraceAlertPReturn:
			a = spec.AlertPReturn{T: t, S: spec.SemID(r.Obj)}
		case core.TraceAlertPRaise:
			a = spec.AlertPRaise{T: t, S: spec.SemID(r.Obj)}
		case core.TraceAlertResumeReturn:
			a = spec.AlertResumeReturn{T: t, M: spec.MutexID(r.Obj), C: spec.CondID(r.Obj2)}
		case core.TraceAlertResumeRaise:
			a = spec.AlertResumeRaise{T: t, M: spec.MutexID(r.Obj), C: spec.CondID(r.Obj2), Variant: spec.VariantFinal}
		case core.TracePriBoost:
			a = spec.PriBoost{T: t, New: int(int64(r.Obj)), Old: int(int64(r.Obj2))}
		case core.TracePriRestore:
			a = spec.PriRestore{T: t, New: int(int64(r.Obj)), Old: int(int64(r.Obj2))}
		default:
			return nil, fmt.Errorf("trace: record %d has unknown kind %d", r.Seq, r.Kind)
		}
		events = append(events, Event{Seq: r.Seq, Thread: fmt.Sprintf("t%d", r.TID), Action: a})
	}
	return events, nil
}
