// Package trace validates implementation executions against the formal
// specification.
//
// internal/simthreads (and any other instrumented implementation) emits a
// spec.Action at each operation's linearization point — the instant, always
// inside the Nub spin lock or at the fast-path atomic instruction, at which
// the operation's visible effect occurs. Because the actions of the
// interface are atomic and totally ordered by their linearization points,
// the emitted sequence is the sequential execution that serializability
// guarantees exists; this package replays that sequence through the
// specification's state machine and reports the first clause it violates.
//
// The checks are exactly the specification's safety clauses:
//
//   - REQUIRES: Release and Wait's Enqueue only by the mutex holder.
//   - WHEN at the linearization: Acquire/Resume fire only on a NIL mutex, P
//     only on an available semaphore, AlertResume.Raise/AlertP.Raise only
//     with SELF in alerts.
//   - ENSURES-consistency: TestAlert's result equals SELF's membership in
//     alerts; Signal removes only current members of c.
//   - No wakeup without an unblocking event: a thread's Resume is accepted
//     only if some Signal or Broadcast on c occurred after its Enqueue.
//     This is the strongest check Signal's weak postcondition
//     ((c' = {}) | (c' ⊆ c)) permits: the specification deliberately allows
//     one Signal to release many racing waiters, so the checker may not
//     insist on one-wakeup-per-Signal — only that no thread resumes out of
//     thin air.
//
// A run that replays cleanly is evidence for experiment E9: the
// implementation's observable behavior is among those the specification
// admits.
package trace

import (
	"fmt"

	"threads/internal/spec"
)

// Event is one linearized action with its global sequence number. It
// mirrors sim.Event but is independent of the simulator so recorded traces
// from any source can be checked.
type Event struct {
	Seq    uint64
	Thread string // diagnostic label
	Action spec.Action
}

// condState tracks one condition variable during replay.
type condState struct {
	// members maps each waiting thread to the Seq of its Enqueue.
	members map[spec.ThreadID]uint64
	// lastUnblock is the Seq of the most recent Signal or Broadcast.
	lastUnblock uint64
}

// Checker replays events against the specification. The zero value is not
// ready; use New.
type Checker struct {
	mutexes map[spec.MutexID]spec.ThreadID
	sems    map[spec.SemID]bool // true = unavailable
	conds   map[spec.CondID]*condState
	alerts  map[spec.ThreadID]bool
	pris    map[spec.ThreadID]int // effective priorities (priority extension)
	applied int
	lastSeq uint64
}

// New returns a Checker in the initial state (every mutex NIL, every
// condition {}, every semaphore available, alerts {}).
func New() *Checker {
	return &Checker{
		mutexes: map[spec.MutexID]spec.ThreadID{},
		sems:    map[spec.SemID]bool{},
		conds:   map[spec.CondID]*condState{},
		alerts:  map[spec.ThreadID]bool{},
		pris:    map[spec.ThreadID]int{},
	}
}

// Applied returns the number of events accepted so far.
func (c *Checker) Applied() int { return c.applied }

func (c *Checker) cond(id spec.CondID) *condState {
	cs, ok := c.conds[id]
	if !ok {
		cs = &condState{members: map[spec.ThreadID]uint64{}}
		c.conds[id] = cs
	}
	return cs
}

// Violation describes a specification clause an event broke.
type Violation struct {
	Seq    uint64
	Action string
	Clause string
	Detail string
}

func (v *Violation) Error() string {
	return fmt.Sprintf("trace: event %d %s violates %s: %s", v.Seq, v.Action, v.Clause, v.Detail)
}

func (c *Checker) fail(ev Event, clause, format string, args ...any) error {
	return &Violation{
		Seq:    ev.Seq,
		Action: ev.Action.String(),
		Clause: clause,
		Detail: fmt.Sprintf(format, args...),
	}
}

// Apply replays one event; a non-nil error is a conformance violation.
func (c *Checker) Apply(ev Event) error {
	switch a := ev.Action.(type) {
	case spec.Acquire:
		if h := c.mutexes[a.M]; h != spec.NIL {
			return c.fail(ev, "Acquire WHEN m = NIL", "m%d held by t%d at the linearization", a.M, h)
		}
		c.mutexes[a.M] = a.T

	case spec.Release:
		if h := c.mutexes[a.M]; h != a.T {
			return c.fail(ev, "Release REQUIRES m = SELF", "m%d = t%d, SELF = t%d", a.M, h, a.T)
		}
		c.mutexes[a.M] = spec.NIL

	case spec.Enqueue:
		if h := c.mutexes[a.M]; h != a.T {
			return c.fail(ev, "Wait REQUIRES m = SELF", "m%d = t%d, SELF = t%d", a.M, h, a.T)
		}
		cs := c.cond(a.C)
		if _, dup := cs.members[a.T]; dup {
			return c.fail(ev, "Enqueue", "t%d enqueued twice on c%d without resuming", a.T, a.C)
		}
		cs.members[a.T] = ev.Seq
		c.mutexes[a.M] = spec.NIL

	case spec.Resume:
		return c.applyResume(ev, a.T, a.M, a.C, false)

	case spec.AlertResumeReturn:
		return c.applyResume(ev, a.T, a.M, a.C, false)

	case spec.AlertResumeRaise:
		return c.applyResume(ev, a.T, a.M, a.C, true)

	case spec.Signal:
		cs := c.cond(a.C)
		for _, t := range a.Removed {
			if _, ok := cs.members[t]; !ok {
				return c.fail(ev, "Signal ENSURES c' ⊆ c", "removed t%d not in c%d", t, a.C)
			}
		}
		cs.lastUnblock = ev.Seq

	case spec.Broadcast:
		c.cond(a.C).lastUnblock = ev.Seq

	case spec.P:
		if c.sems[a.S] {
			return c.fail(ev, "P WHEN s = available", "s%d unavailable at the linearization", a.S)
		}
		c.sems[a.S] = true

	case spec.V:
		c.sems[a.S] = false

	case spec.AlertPReturn:
		if c.sems[a.S] {
			return c.fail(ev, "AlertP RETURNS WHEN s = available", "s%d unavailable", a.S)
		}
		c.sems[a.S] = true

	case spec.AlertPRaise:
		if !c.alerts[a.T] {
			return c.fail(ev, "AlertP RAISES WHEN SELF IN alerts", "t%d not alerted", a.T)
		}
		delete(c.alerts, a.T)
		// UNCHANGED [s]: nothing else to do.

	case spec.Alert:
		c.alerts[a.Target] = true

	case spec.TestAlert:
		if want := c.alerts[a.T]; a.Result != want {
			return c.fail(ev, "TestAlert ENSURES b = (SELF IN alerts)",
				"returned %v, alerts membership %v", a.Result, want)
		}
		delete(c.alerts, a.T)

	case spec.PriBoost:
		// Boost/restore records are emitted under the target thread's
		// donation lock, so per thread they are totally ordered and each
		// must start from the value the previous transition left.
		if cur := c.pris[a.T]; cur != a.Old {
			return c.fail(ev, "PriBoost REQUIRES old = pris[t]",
				"pris[t%d] = %d, record claims old = %d", a.T, cur, a.Old)
		}
		if a.New <= a.Old {
			return c.fail(ev, "PriBoost REQUIRES new > old", "old = %d, new = %d", a.Old, a.New)
		}
		c.pris[a.T] = a.New

	case spec.PriRestore:
		if cur := c.pris[a.T]; cur != a.Old {
			return c.fail(ev, "PriRestore REQUIRES old = pris[t]",
				"pris[t%d] = %d, record claims old = %d", a.T, cur, a.Old)
		}
		if a.New >= a.Old {
			return c.fail(ev, "PriRestore REQUIRES new < old", "old = %d, new = %d", a.Old, a.New)
		}
		if a.New == 0 {
			delete(c.pris, a.T)
		} else {
			c.pris[a.T] = a.New
		}

	default:
		return c.fail(ev, "unknown action", "unhandled action type %T", ev.Action)
	}
	c.applied++
	return nil
}

func (c *Checker) applyResume(ev Event, t spec.ThreadID, m spec.MutexID, cid spec.CondID, raise bool) error {
	if h := c.mutexes[m]; h != spec.NIL {
		return c.fail(ev, "Resume WHEN m = NIL", "m%d held by t%d at the linearization", m, h)
	}
	cs := c.cond(cid)
	enq, ok := cs.members[t]
	if !ok {
		return c.fail(ev, "Resume", "t%d resumed from c%d without a matching Enqueue", t, cid)
	}
	if raise {
		if !c.alerts[t] {
			return c.fail(ev, "AlertResume RAISES WHEN SELF IN alerts", "t%d not alerted", t)
		}
		delete(c.alerts, t) // alerts' = delete(alerts, SELF)
	} else {
		if cs.lastUnblock <= enq {
			return c.fail(ev, "Resume WHEN NOT (SELF IN c)",
				"t%d resumed with no Signal/Broadcast on c%d after its Enqueue (enqueued at %d, last unblock at %d): a wakeup out of thin air",
				t, cid, enq, cs.lastUnblock)
		}
	}
	delete(cs.members, t) // departure from c (for raise: c' = delete(c, SELF))
	c.mutexes[m] = t
	c.applied++
	return nil
}

// Feed streams one stamp-ordered batch into the checker, carrying state
// across batches: episodic collection (run, quiesce, collect, feed, repeat)
// replays arbitrarily long executions in bounded memory. Seqs must be
// strictly increasing within and across batches — the global stamp counter
// guarantees this for honestly merged runtime traces, so a regression
// (records lost, shards merged unsorted, a ring collected twice) surfaces
// here instead of as a meaningless state-machine verdict.
func (c *Checker) Feed(events []Event) error {
	for _, ev := range events {
		if ev.Seq <= c.lastSeq {
			return &Violation{
				Seq:    ev.Seq,
				Action: ev.Action.String(),
				Clause: "trace well-formedness",
				Detail: fmt.Sprintf("seq %d not greater than previously fed seq %d", ev.Seq, c.lastSeq),
			}
		}
		c.lastSeq = ev.Seq
		if err := c.Apply(ev); err != nil {
			return err
		}
	}
	return nil
}

// CheckAll replays a whole trace, returning the count of events accepted
// and the first violation, if any.
func CheckAll(events []Event) (int, error) {
	c := New()
	for _, ev := range events {
		if err := c.Apply(ev); err != nil {
			return c.applied, err
		}
	}
	return c.applied, nil
}
