package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"threads/internal/spec"
)

// Traces serialize as JSON Lines (one event per line), so long recordings
// stream without buffering the whole run, survive truncation (every prefix
// is a valid trace), and diff cleanly.

// encodedEvent is the wire form of an Event.
type encodedEvent struct {
	Seq    uint64 `json:"seq"`
	Thread string `json:"thread,omitempty"`
	Kind   string `json:"kind"`
	T      int    `json:"t,omitempty"`      // SELF
	M      int    `json:"m,omitempty"`      // mutex id
	C      int    `json:"c,omitempty"`      // condition id
	S      int    `json:"s,omitempty"`      // semaphore id
	Target int    `json:"target,omitempty"` // Alert target
	Rm     []int  `json:"removed,omitempty"`
	Result bool   `json:"result,omitempty"`
}

func encode(ev Event) (encodedEvent, error) {
	e := encodedEvent{Seq: ev.Seq, Thread: ev.Thread}
	switch a := ev.Action.(type) {
	case spec.Acquire:
		e.Kind, e.T, e.M = "Acquire", int(a.T), int(a.M)
	case spec.Release:
		e.Kind, e.T, e.M = "Release", int(a.T), int(a.M)
	case spec.Enqueue:
		e.Kind, e.T, e.M, e.C = "Enqueue", int(a.T), int(a.M), int(a.C)
	case spec.Resume:
		e.Kind, e.T, e.M, e.C = "Resume", int(a.T), int(a.M), int(a.C)
	case spec.Signal:
		e.Kind, e.T, e.C = "Signal", int(a.T), int(a.C)
		for _, r := range a.Removed {
			e.Rm = append(e.Rm, int(r))
		}
	case spec.Broadcast:
		e.Kind, e.T, e.C = "Broadcast", int(a.T), int(a.C)
	case spec.P:
		e.Kind, e.T, e.S = "P", int(a.T), int(a.S)
	case spec.V:
		e.Kind, e.T, e.S = "V", int(a.T), int(a.S)
	case spec.Alert:
		e.Kind, e.T, e.Target = "Alert", int(a.T), int(a.Target)
	case spec.TestAlert:
		e.Kind, e.T, e.Result = "TestAlert", int(a.T), a.Result
	case spec.AlertPReturn:
		e.Kind, e.T, e.S = "AlertP.Return", int(a.T), int(a.S)
	case spec.AlertPRaise:
		e.Kind, e.T, e.S = "AlertP.Raise", int(a.T), int(a.S)
	case spec.AlertResumeReturn:
		e.Kind, e.T, e.M, e.C = "AlertResume.Return", int(a.T), int(a.M), int(a.C)
	case spec.AlertResumeRaise:
		// Recorded traces always use the final (corrected) semantics.
		e.Kind, e.T, e.M, e.C = "AlertResume.Raise", int(a.T), int(a.M), int(a.C)
	default:
		return e, fmt.Errorf("trace: cannot encode action %T", ev.Action)
	}
	return e, nil
}

func decode(e encodedEvent) (Event, error) {
	ev := Event{Seq: e.Seq, Thread: e.Thread}
	t := spec.ThreadID(e.T)
	switch e.Kind {
	case "Acquire":
		ev.Action = spec.Acquire{T: t, M: spec.MutexID(e.M)}
	case "Release":
		ev.Action = spec.Release{T: t, M: spec.MutexID(e.M)}
	case "Enqueue":
		ev.Action = spec.Enqueue{T: t, M: spec.MutexID(e.M), C: spec.CondID(e.C)}
	case "Resume":
		ev.Action = spec.Resume{T: t, M: spec.MutexID(e.M), C: spec.CondID(e.C)}
	case "Signal":
		a := spec.Signal{T: t, C: spec.CondID(e.C)}
		for _, r := range e.Rm {
			a.Removed = append(a.Removed, spec.ThreadID(r))
		}
		ev.Action = a
	case "Broadcast":
		ev.Action = spec.Broadcast{T: t, C: spec.CondID(e.C)}
	case "P":
		ev.Action = spec.P{T: t, S: spec.SemID(e.S)}
	case "V":
		ev.Action = spec.V{T: t, S: spec.SemID(e.S)}
	case "Alert":
		ev.Action = spec.Alert{T: t, Target: spec.ThreadID(e.Target)}
	case "TestAlert":
		ev.Action = spec.TestAlert{T: t, Result: e.Result}
	case "AlertP.Return":
		ev.Action = spec.AlertPReturn{T: t, S: spec.SemID(e.S)}
	case "AlertP.Raise":
		ev.Action = spec.AlertPRaise{T: t, S: spec.SemID(e.S)}
	case "AlertResume.Return":
		ev.Action = spec.AlertResumeReturn{T: t, M: spec.MutexID(e.M), C: spec.CondID(e.C)}
	case "AlertResume.Raise":
		ev.Action = spec.AlertResumeRaise{T: t, M: spec.MutexID(e.M), C: spec.CondID(e.C), Variant: spec.VariantFinal}
	default:
		return ev, fmt.Errorf("trace: unknown action kind %q", e.Kind)
	}
	return ev, nil
}

// Write serializes events to w as JSON Lines.
func Write(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range events {
		e, err := encode(ev)
		if err != nil {
			return err
		}
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserializes a JSON Lines trace from r.
func Read(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for {
		var e encodedEvent
		if err := dec.Decode(&e); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, fmt.Errorf("trace: event %d: %w", len(out)+1, err)
		}
		ev, err := decode(e)
		if err != nil {
			return out, err
		}
		out = append(out, ev)
	}
}
