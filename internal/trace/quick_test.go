package trace

import (
	"math/rand"
	"testing"
	"testing/quick"

	"threads/internal/spec"
)

// legalTraceGen generates random *legal* histories of the interface by
// simulating N client threads and a scheduler that only ever picks enabled
// actions. Feeding the result to the checker must never produce a
// violation: this property-tests the checker for false positives across a
// far larger space than the hand-written cases.
type legalTraceGen struct {
	r      *rand.Rand
	seq    uint64
	events []Event

	mutexHeld map[spec.MutexID]spec.ThreadID
	semAvail  map[spec.SemID]bool
	alerts    map[spec.ThreadID]bool
	// waiting[t] is set when t is enqueued on cond 1 / mutex 1, with the
	// seq of its Enqueue; justified records whether an unblock happened
	// after it.
	waiting   map[spec.ThreadID]uint64
	lastUnblk uint64
	// holding[t] — t holds mutex 1.
	threads []spec.ThreadID
}

func newLegalTraceGen(r *rand.Rand, n int) *legalTraceGen {
	g := &legalTraceGen{
		r:         r,
		mutexHeld: map[spec.MutexID]spec.ThreadID{},
		semAvail:  map[spec.SemID]bool{1: true},
		alerts:    map[spec.ThreadID]bool{},
		waiting:   map[spec.ThreadID]uint64{},
	}
	for i := 1; i <= n; i++ {
		g.threads = append(g.threads, spec.ThreadID(i))
	}
	return g
}

func (g *legalTraceGen) emit(a spec.Action) {
	g.seq++
	g.events = append(g.events, Event{Seq: g.seq, Action: a})
}

// step performs one random enabled action; returns false if none was
// enabled for the chosen thread (the caller just retries).
func (g *legalTraceGen) step() bool {
	const m, c, s = spec.MutexID(1), spec.CondID(1), spec.SemID(1)
	t := g.threads[g.r.Intn(len(g.threads))]
	if enq, isWaiting := g.waiting[t]; isWaiting {
		// The thread is blocked in Wait; it can resume only when the
		// mutex is free and an unblock justified it, or raise if alerted.
		if g.mutexHeld[m] != spec.NIL {
			return false
		}
		if g.alerts[t] && g.r.Intn(2) == 0 {
			g.emit(spec.AlertResumeRaise{T: t, M: m, C: c, Variant: spec.VariantFinal})
			delete(g.alerts, t)
			delete(g.waiting, t)
			g.mutexHeld[m] = t
			return true
		}
		if g.lastUnblk > enq {
			g.emit(spec.Resume{T: t, M: m, C: c})
			delete(g.waiting, t)
			g.mutexHeld[m] = t
			return true
		}
		return false
	}
	switch g.r.Intn(9) {
	case 0: // Acquire
		if g.mutexHeld[m] != spec.NIL || g.holds(t) {
			return false
		}
		g.emit(spec.Acquire{T: t, M: m})
		g.mutexHeld[m] = t
	case 1: // Release
		if g.mutexHeld[m] != t {
			return false
		}
		g.emit(spec.Release{T: t, M: m})
		g.mutexHeld[m] = spec.NIL
	case 2: // Enqueue (Wait)
		if g.mutexHeld[m] != t {
			return false
		}
		g.emit(spec.Enqueue{T: t, M: m, C: c})
		g.mutexHeld[m] = spec.NIL
		g.waiting[t] = g.seq
	case 3: // Signal, possibly removing one waiting member
		var removed []spec.ThreadID
		for wt := range g.waiting {
			if g.r.Intn(2) == 0 {
				removed = []spec.ThreadID{wt}
			}
			break
		}
		g.emit(spec.Signal{T: t, C: c, Removed: removed})
		g.lastUnblk = g.seq
	case 4: // Broadcast
		g.emit(spec.Broadcast{T: t, C: c})
		g.lastUnblk = g.seq
	case 5: // P
		if !g.semAvail[s] {
			return false
		}
		g.emit(spec.P{T: t, S: s})
		g.semAvail[s] = false
	case 6: // V
		g.emit(spec.V{T: t, S: s})
		g.semAvail[s] = true
	case 7: // Alert a random thread
		target := g.threads[g.r.Intn(len(g.threads))]
		g.emit(spec.Alert{T: t, Target: target})
		g.alerts[target] = true
	case 8: // TestAlert with the correct result
		g.emit(spec.TestAlert{T: t, Result: g.alerts[t]})
		delete(g.alerts, t)
	}
	return true
}

func (g *legalTraceGen) holds(t spec.ThreadID) bool {
	for _, h := range g.mutexHeld {
		if h == t {
			return true
		}
	}
	return false
}

// TestQuickLegalTracesAccepted: the checker accepts every randomly
// generated legal history.
func TestQuickLegalTracesAccepted(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := newLegalTraceGen(r, 3)
		for steps := 0; steps < 200; steps++ {
			g.step()
		}
		n, err := CheckAll(g.events)
		if err != nil {
			t.Logf("seed %d: legal trace rejected after %d events: %v", seed, n, err)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(21))}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCorruptedTracesMostlyRejected: specific, always-illegal
// corruptions of a legal trace are detected. (Arbitrary mutations can be
// legal, so the test targets corruptions with guaranteed violations.)
func TestQuickCorruptedTracesMostlyRejected(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := newLegalTraceGen(r, 3)
		for steps := 0; steps < 100; steps++ {
			g.step()
		}
		// Corruption: append an Acquire by one thread then another —
		// the second must be rejected whatever came before.
		evs := append([]Event{}, g.events...)
		n := uint64(len(evs))
		evs = append(evs,
			Event{Seq: n + 1, Action: spec.Acquire{T: 1, M: 99}},
			Event{Seq: n + 2, Action: spec.Acquire{T: 2, M: 99}},
		)
		if _, err := CheckAll(evs); err == nil {
			t.Logf("seed %d: double acquire not rejected", seed)
			return false
		}
		// Corruption: a Resume with no Enqueue at all.
		evs2 := append([]Event{}, g.events...)
		evs2 = append(evs2, Event{Seq: n + 1, Action: spec.Resume{T: 9, M: 98, C: 77}})
		if _, err := CheckAll(evs2); err == nil {
			t.Logf("seed %d: resume without enqueue not rejected", seed)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(22))}); err != nil {
		t.Fatal(err)
	}
}
