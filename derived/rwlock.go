package derived

import "threads"

// RWLock is a writers-preferring readers-writer lock — the paper's
// motivating example for Broadcast: "releasing a 'writer' lock on a file
// might permit all 'readers' to resume." Readers and writers wait on the
// same condition variable for different predicates, so Signal would be
// incorrect; every state change that could enable anyone uses Broadcast.
type RWLock struct {
	mu             threads.Mutex //threads:guards readers,writing,waitingWriters
	changed        threads.Condition
	readers        int
	writing        bool
	waitingWriters int
}

// NewRWLock returns an open lock.
func NewRWLock() *RWLock { return &RWLock{} }

// RLock acquires shared access; waiting writers take priority over new
// readers so writers cannot starve.
func (l *RWLock) RLock() {
	l.mu.Acquire()
	for l.writing || l.waitingWriters > 0 {
		l.changed.Wait(&l.mu)
	}
	l.readers++
	l.mu.Release()
}

// TryRLock acquires shared access without blocking.
func (l *RWLock) TryRLock() bool {
	l.mu.Acquire()
	ok := !l.writing && l.waitingWriters == 0
	if ok {
		l.readers++
	}
	l.mu.Release()
	return ok
}

// RUnlock releases shared access.
func (l *RWLock) RUnlock() {
	l.mu.Acquire()
	if l.readers == 0 {
		l.mu.Release()
		panic("derived: RUnlock without RLock")
	}
	l.readers--
	last := l.readers == 0
	l.mu.Release()
	if last {
		l.changed.Broadcast()
	}
}

// Lock acquires exclusive access.
func (l *RWLock) Lock() {
	l.mu.Acquire()
	l.waitingWriters++
	for l.writing || l.readers > 0 {
		l.changed.Wait(&l.mu)
	}
	l.waitingWriters--
	l.writing = true
	l.mu.Release()
}

// Unlock releases exclusive access; all readers (or one writer) may
// resume, so Broadcast is necessary for correctness.
func (l *RWLock) Unlock() {
	l.mu.Acquire()
	if !l.writing {
		l.mu.Release()
		panic("derived: Unlock without Lock")
	}
	l.writing = false
	l.mu.Release()
	l.changed.Broadcast()
}

// Readers reports the current shared holders (advisory).
func (l *RWLock) Readers() int {
	l.mu.Acquire()
	defer l.mu.Release()
	return l.readers
}
