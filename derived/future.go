package derived

import "threads"

// Future is a single-assignment result cell: Get blocks until Set delivers
// the value. Waiting is alertable, so futures compose with the timeout
// pattern (alert the waiting thread; Get returns threads.Alerted).
type Future[T any] struct {
	mu    threads.Mutex //threads:guards done,value
	set   threads.Condition
	done  bool
	value T
}

// NewFuture returns an unset future.
func NewFuture[T any]() *Future[T] { return &Future[T]{} }

// Set delivers the value; every waiter may proceed, so Broadcast. Set
// panics on a second call: futures are single-assignment.
func (f *Future[T]) Set(v T) {
	f.mu.Acquire()
	if f.done {
		f.mu.Release()
		panic("derived: Future set twice")
	}
	f.value = v
	f.done = true
	f.mu.Release()
	f.set.Broadcast()
}

// Get blocks until the value is set.
func (f *Future[T]) Get() T {
	f.mu.Acquire()
	for !f.done {
		f.set.Wait(&f.mu)
	}
	v := f.value
	f.mu.Release()
	return v
}

// AlertGet is Get, except a pending or arriving Alert interrupts the wait
// with threads.Alerted.
func (f *Future[T]) AlertGet() (T, error) {
	f.mu.Acquire()
	for !f.done {
		if err := f.set.AlertWait(&f.mu); err != nil {
			var zero T
			f.mu.Release()
			return zero, err
		}
	}
	v := f.value
	f.mu.Release()
	return v, nil
}

// TryGet returns the value if set.
func (f *Future[T]) TryGet() (T, bool) {
	f.mu.Acquire()
	defer f.mu.Release()
	return f.value, f.done
}

// Done reports whether the future has been set (advisory).
func (f *Future[T]) Done() bool {
	f.mu.Acquire()
	defer f.mu.Release()
	return f.done
}
