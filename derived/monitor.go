package derived

import (
	"time"

	"threads"
)

// Monitor is the Hoare/Mesa monitor shape the paper's discipline implies:
// one Mutex guarding an object's state plus any number of named conditions
// bound to it. Binding the conditions to the monitor enforces statically
// what the specification demands in prose — a Condition is always waited on
// with the same Mutex — and the deadline variants thread through, so every
// monitor wait can carry a timeout.
type Monitor struct {
	mu threads.Mutex
}

// NewMonitor returns a monitor with no conditions; create them with NewCond.
func NewMonitor() *Monitor { return &Monitor{} }

// Enter begins a monitor region (Acquire on the monitor mutex).
//
//threadsvet:ignore lockpair: Enter/Exit split the bracket across calls by design; the monitor's litmus and tests check the pairing dynamically
func (mo *Monitor) Enter() { mo.mu.Acquire() }

// Exit ends a monitor region.
//
//threadsvet:ignore lockpair: the matching Acquire is in Enter; pairing is the monitor's contract, checked dynamically
func (mo *Monitor) Exit() { mo.mu.Release() }

// Do runs body inside the monitor — the LOCK ... DO ... END bracket.
func (mo *Monitor) Do(body func()) { threads.Lock(&mo.mu, body) }

// MonitorCond is a condition variable bound to its monitor's mutex.
type MonitorCond struct {
	mo *Monitor
	c  threads.Condition
}

// NewCond returns a new condition bound to the monitor.
func (mo *Monitor) NewCond() *MonitorCond { return &MonitorCond{mo: mo} }

// Wait suspends the caller (which must be inside the monitor) until a
// Signal or Broadcast; return is a hint, so callers re-check the predicate.
//
//threadsvet:ignore waitloop: thin delegation — the re-test loop is the caller's obligation, exactly as for Condition.Wait
func (mc *MonitorCond) Wait() { mc.c.Wait(&mc.mo.mu) }

// AlertWait is Wait, interruptible by Alert.
//
//threadsvet:ignore waitloop: thin delegation — the re-test loop is the caller's obligation, exactly as for Condition.AlertWait
func (mc *MonitorCond) AlertWait() error { return mc.c.AlertWait(&mc.mo.mu) }

// WaitDeadline is Wait with a deadline: nil, threads.DeadlineExceeded, or
// threads.Alerted. The caller is inside the monitor on every return.
func (mc *MonitorCond) WaitDeadline(deadline time.Time) error {
	//threadsvet:ignore waitloop: thin delegation — the re-test loop is the caller's obligation, exactly as for AlertWaitDeadline
	return mc.c.AlertWaitDeadline(&mc.mo.mu, deadline)
}

// Signal wakes at least one waiter, if any.
func (mc *MonitorCond) Signal() { mc.c.Signal() }

// Broadcast wakes all waiters.
func (mc *MonitorCond) Broadcast() { mc.c.Broadcast() }
