package derived

import (
	"time"

	"threads"
)

// Ring is a bounded multi-producer, single-consumer queue: the paper's
// bounded-buffer shape (a condition per direction) with a fixed circular
// buffer instead of a slice, so steady-state operation allocates nothing.
// Any thread may Push; only one thread at a time may Pop (the single
// consumer is a usage contract, not enforced).
type Ring[T any] struct {
	mu       threads.Mutex //threads:guards buf,head,n
	nonEmpty threads.Condition
	nonFull  threads.Condition
	buf      []T
	head     int // next Pop
	n        int // occupied
}

// NewRing returns an empty ring with the given capacity (≥ 1).
func NewRing[T any](capacity int) *Ring[T] {
	if capacity < 1 {
		panic("derived: ring capacity must be at least 1")
	}
	return &Ring[T]{buf: make([]T, capacity)}
}

// Push appends v, waiting while the ring is full. One blocked Pop can
// benefit from the new item, so Signal suffices.
func (r *Ring[T]) Push(v T) {
	r.mu.Acquire()
	for r.n == len(r.buf) {
		r.nonFull.Wait(&r.mu)
	}
	r.put(v)
	r.mu.Release()
	r.nonEmpty.Signal()
}

// PushDeadline is Push with a deadline: nil on success,
// threads.DeadlineExceeded or threads.Alerted if the wait for space gave up
// first (the ring is then unchanged).
func (r *Ring[T]) PushDeadline(v T, deadline time.Time) error {
	r.mu.Acquire()
	for r.n == len(r.buf) {
		if err := r.nonFull.AlertWaitDeadline(&r.mu, deadline); err != nil {
			r.mu.Release()
			return err
		}
	}
	r.put(v)
	r.mu.Release()
	r.nonEmpty.Signal()
	return nil
}

// Pop removes the oldest item, waiting while the ring is empty. Only one
// blocked Push can use the freed slot, so Signal suffices.
func (r *Ring[T]) Pop() T {
	r.mu.Acquire()
	for r.n == 0 {
		r.nonEmpty.Wait(&r.mu)
	}
	v := r.take()
	r.mu.Release()
	r.nonFull.Signal()
	return v
}

// PopDeadline is Pop with a deadline; ok reports whether an item was taken.
func (r *Ring[T]) PopDeadline(deadline time.Time) (v T, err error) {
	r.mu.Acquire()
	for r.n == 0 {
		if werr := r.nonEmpty.AlertWaitDeadline(&r.mu, deadline); werr != nil {
			r.mu.Release()
			return v, werr
		}
	}
	v = r.take()
	r.mu.Release()
	r.nonFull.Signal()
	return v, nil
}

// Len reports the occupied slots (advisory).
func (r *Ring[T]) Len() int {
	r.mu.Acquire()
	defer r.mu.Release()
	return r.n
}

// put and take run under mu.
func (r *Ring[T]) put(v T) {
	r.buf[(r.head+r.n)%len(r.buf)] = v
	r.n++
}

func (r *Ring[T]) take() T {
	v := r.buf[r.head]
	var zero T
	r.buf[r.head] = zero
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return v
}
