package derived

import (
	"errors"
	"sync"
	"testing"
	"time"

	"threads"
)

func TestMonitorGuardedCounter(t *testing.T) {
	mo := NewMonitor()
	nonZero := mo.NewCond()
	count := 0
	const workers, iters = 4, 100
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		threads.Fork(func() {
			defer wg.Done()
			for n := 0; n < iters; n++ {
				mo.Do(func() { count++ })
				nonZero.Signal()
			}
		})
	}
	drained := make(chan int, 1)
	threads.Fork(func() {
		taken := 0
		mo.Enter()
		for taken < workers*iters {
			for count == 0 {
				nonZero.Wait()
			}
			taken += count
			count = 0
		}
		mo.Exit()
		drained <- taken
	})
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	waitDone(t, done, "monitor workers")
	if got := <-drained; got != workers*iters {
		t.Fatalf("drained %d increments, want %d", got, workers*iters)
	}
}

func TestMonitorWaitDeadline(t *testing.T) {
	mo := NewMonitor()
	never := mo.NewCond()
	done := make(chan struct{})
	threads.Fork(func() {
		defer close(done)
		mo.Enter()
		defer mo.Exit()
		err := never.WaitDeadline(time.Now().Add(20 * time.Millisecond))
		if !errors.Is(err, threads.DeadlineExceeded) {
			t.Errorf("WaitDeadline = %v, want DeadlineExceeded", err)
		}
	})
	waitDone(t, done, "monitor deadline wait")
}

func TestPhaserPhases(t *testing.T) {
	const parties, phases = 4, 5
	p := NewPhaser(parties)
	var mu sync.Mutex
	arrivals := make([]int, phases)
	bad := false
	var wg sync.WaitGroup
	wg.Add(parties)
	for i := 0; i < parties; i++ {
		threads.Fork(func() {
			defer wg.Done()
			for ph := 0; ph < phases; ph++ {
				mu.Lock()
				arrivals[ph]++
				mu.Unlock()
				p.ArriveAndAwait()
				mu.Lock()
				if arrivals[ph] != parties {
					bad = true
				}
				mu.Unlock()
			}
		})
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	waitDone(t, done, "phaser parties")
	if bad {
		t.Fatal("a party passed a phase before all arrived")
	}
	if got := p.Phase(); got != phases {
		t.Fatalf("phase = %d, want %d", got, phases)
	}
}

func TestPhaserArriveAwaitSeparately(t *testing.T) {
	p := NewPhaser(2)
	done := make(chan struct{})
	threads.Fork(func() {
		defer close(done)
		phase := p.Arrive()
		p.AwaitAdvance(phase)
	})
	time.Sleep(5 * time.Millisecond)
	if tripped := p.ArriveAndAwait(); !tripped {
		t.Fatal("second arrival did not trip the phase")
	}
	waitDone(t, done, "separated arrive/await")
}

func TestPhaserAwaitAdvanceDeadline(t *testing.T) {
	p := NewPhaser(2)
	done := make(chan struct{})
	threads.Fork(func() {
		defer close(done)
		phase := p.Arrive()
		err := p.AwaitAdvanceDeadline(phase, time.Now().Add(20*time.Millisecond))
		if !errors.Is(err, threads.DeadlineExceeded) {
			t.Errorf("AwaitAdvanceDeadline = %v, want DeadlineExceeded", err)
			return
		}
		// The arrival stays counted: one more arrival trips the phase, and
		// a second await with a generous deadline passes.
		go p.Arrive()
		if err := p.AwaitAdvanceDeadline(phase, time.Now().Add(10*time.Second)); err != nil {
			t.Errorf("second AwaitAdvanceDeadline = %v, want nil", err)
		}
	})
	waitDone(t, done, "phaser deadline await")
}

func TestRingMPSC(t *testing.T) {
	const producers, items = 4, 200
	r := NewRing[int](8)
	var wg sync.WaitGroup
	wg.Add(producers)
	for i := 0; i < producers; i++ {
		base := i * items
		threads.Fork(func() {
			defer wg.Done()
			for n := 0; n < items; n++ {
				r.Push(base + n)
			}
		})
	}
	sum := 0
	perProducerLast := make([]int, producers)
	for i := range perProducerLast {
		perProducerLast[i] = -1
	}
	fifoBroken := false
	consumed := make(chan struct{})
	threads.Fork(func() {
		defer close(consumed)
		for n := 0; n < producers*items; n++ {
			v := r.Pop()
			sum += v
			who, seq := v/items, v%items
			if seq <= perProducerLast[who] {
				fifoBroken = true
			}
			perProducerLast[who] = seq
		}
	})
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	waitDone(t, done, "ring producers")
	waitDone(t, consumed, "ring consumer")
	total := producers * items
	if want := (total - 1) * total / 2; sum != want {
		t.Fatalf("consumed sum %d, want %d (item lost or duplicated)", sum, want)
	}
	if fifoBroken {
		t.Fatal("per-producer FIFO order broken")
	}
	if r.Len() != 0 {
		t.Fatalf("ring holds %d items at quiescence", r.Len())
	}
}

func TestRingDeadlines(t *testing.T) {
	r := NewRing[int](1)
	done := make(chan struct{})
	threads.Fork(func() {
		defer close(done)
		// Empty: PopDeadline times out.
		if _, err := r.PopDeadline(time.Now().Add(20 * time.Millisecond)); !errors.Is(err, threads.DeadlineExceeded) {
			t.Errorf("PopDeadline on empty ring = %v, want DeadlineExceeded", err)
		}
		// One slot: second PushDeadline times out, ring unchanged.
		if err := r.PushDeadline(1, time.Now().Add(10*time.Second)); err != nil {
			t.Errorf("first PushDeadline = %v", err)
		}
		if err := r.PushDeadline(2, time.Now().Add(20*time.Millisecond)); !errors.Is(err, threads.DeadlineExceeded) {
			t.Errorf("PushDeadline on full ring = %v, want DeadlineExceeded", err)
		}
		if v, err := r.PopDeadline(time.Now().Add(10 * time.Second)); err != nil || v != 1 {
			t.Errorf("PopDeadline = %d, %v, want 1, nil", v, err)
		}
	})
	waitDone(t, done, "ring deadline paths")
}
