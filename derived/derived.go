// Package derived provides higher-level synchronization objects built
// entirely on the threads package's primitives, in the styles the paper's
// informal description motivates: a buffer Pool ("freeing a buffer back
// into a pool" is the paper's canonical Signal example), a readers-writer
// lock (its canonical Broadcast example), a counting semaphore layered on
// mutex + condition (the "higher level locking scheme" whose implementation
// "might require that some threads wait until a lock is available"),
// barriers, and latches.
//
// Every object follows the paper's usage discipline: shared state guarded
// by a Mutex, condition variables paired with predicates, Wait in a loop
// (return is a hint), Signal when one waiter can benefit, Broadcast when
// several might.
package derived

import "threads"

// CountingSemaphore generalizes the binary threads.Semaphore to N permits,
// built from a mutex and one condition variable as the paper's layering
// suggests. Acquire blocks while no permit is free; Release never blocks.
type CountingSemaphore struct {
	mu      threads.Mutex
	nonZero threads.Condition
	permits int //threads:guardedby mu
}

// NewCountingSemaphore returns a semaphore with the given initial permits.
func NewCountingSemaphore(permits int) *CountingSemaphore {
	if permits < 0 {
		panic("derived: negative permit count")
	}
	return &CountingSemaphore{permits: permits}
}

// Acquire takes one permit, waiting until one is free.
func (s *CountingSemaphore) Acquire() {
	s.mu.Acquire()
	for s.permits == 0 {
		s.nonZero.Wait(&s.mu)
	}
	s.permits--
	s.mu.Release()
}

// TryAcquire takes a permit if one is free, without blocking.
func (s *CountingSemaphore) TryAcquire() bool {
	s.mu.Acquire()
	ok := s.permits > 0
	if ok {
		s.permits--
	}
	s.mu.Release()
	return ok
}

// AlertAcquire is Acquire, except a pending or arriving Alert interrupts
// the wait and returns threads.Alerted.
func (s *CountingSemaphore) AlertAcquire() error {
	s.mu.Acquire()
	for s.permits == 0 {
		if err := s.nonZero.AlertWait(&s.mu); err != nil {
			s.mu.Release()
			return err
		}
	}
	s.permits--
	s.mu.Release()
	return nil
}

// Release returns one permit; only one blocked Acquire can benefit, so
// Signal suffices.
func (s *CountingSemaphore) Release() {
	s.mu.Acquire()
	s.permits++
	s.mu.Release()
	s.nonZero.Signal()
}

// Permits reports the free permits (advisory).
func (s *CountingSemaphore) Permits() int {
	s.mu.Acquire()
	defer s.mu.Release()
	return s.permits
}

// Barrier blocks each arriving thread until n threads have arrived, then
// releases them all — every waiter must resume, so Broadcast is required
// for correctness. Barriers are cyclic: the next n arrivals form the next
// generation.
type Barrier struct {
	mu      threads.Mutex
	tripped threads.Condition
	n       int
	arrived int //threads:guardedby mu
	gen     uint64
}

// NewBarrier returns a barrier for parties of n (n ≥ 1).
func NewBarrier(n int) *Barrier {
	if n < 1 {
		panic("derived: barrier size must be at least 1")
	}
	return &Barrier{n: n}
}

// Await blocks until n threads (including the caller) have called Await in
// this generation. It returns true for exactly one caller per generation
// (the one that tripped the barrier), which may do per-generation work.
func (b *Barrier) Await() (tripped bool) {
	b.mu.Acquire()
	gen := b.gen
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.gen++
		b.mu.Release()
		b.tripped.Broadcast()
		return true
	}
	for gen == b.gen {
		b.tripped.Wait(&b.mu)
	}
	b.mu.Release()
	return false
}

// Latch is a one-shot gate: threads Wait until Open is called; once open it
// never closes. (The paper's "writer lock released frees all readers"
// shape, in its simplest form.)
type Latch struct {
	mu     threads.Mutex
	opened threads.Condition
	open   bool
}

// NewLatch returns a closed latch.
func NewLatch() *Latch { return &Latch{} }

// Open releases every current and future waiter. Idempotent.
func (l *Latch) Open() {
	l.mu.Acquire()
	already := l.open
	l.open = true
	l.mu.Release()
	if !already {
		l.opened.Broadcast()
	}
}

// Wait blocks until the latch is open.
func (l *Latch) Wait() {
	l.mu.Acquire()
	for !l.open {
		l.opened.Wait(&l.mu)
	}
	l.mu.Release()
}

// IsOpen reports whether the latch has been opened.
func (l *Latch) IsOpen() bool {
	l.mu.Acquire()
	defer l.mu.Release()
	return l.open
}

// Pool is a fixed set of reusable buffers — the paper's canonical example
// of when Signal is preferable to Broadcast: "when freeing a buffer back
// into a pool", only one blocked thread can benefit.
type Pool[T any] struct {
	mu    threads.Mutex
	freed threads.Condition
	free  []T //threads:guardedby mu
}

// NewPool returns a pool initially holding the given items.
func NewPool[T any](items ...T) *Pool[T] {
	p := &Pool[T]{}
	p.free = append(p.free, items...)
	return p
}

// Get takes an item, waiting until one is free.
func (p *Pool[T]) Get() T {
	p.mu.Acquire()
	for len(p.free) == 0 {
		p.freed.Wait(&p.mu)
	}
	item := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	p.mu.Release()
	return item
}

// TryGet takes an item if one is free.
func (p *Pool[T]) TryGet() (T, bool) {
	p.mu.Acquire()
	defer p.mu.Release()
	if len(p.free) == 0 {
		var zero T
		return zero, false
	}
	item := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return item, true
}

// Put frees an item back into the pool; one waiter can benefit, so Signal.
func (p *Pool[T]) Put(item T) {
	p.mu.Acquire()
	p.free = append(p.free, item)
	p.mu.Release()
	p.freed.Signal()
}

// Size reports the free items (advisory).
func (p *Pool[T]) Size() int {
	p.mu.Acquire()
	defer p.mu.Release()
	return len(p.free)
}
