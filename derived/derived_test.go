package derived

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"threads"
)

func waitDone(t *testing.T, ch <-chan struct{}, what string) {
	t.Helper()
	select {
	case <-ch:
	case <-time.After(10 * time.Second):
		t.Fatalf("timeout waiting for %s", what)
	}
}

// --- CountingSemaphore -----------------------------------------------------

func TestCountingSemaphoreLimitsConcurrency(t *testing.T) {
	const permits = 3
	s := NewCountingSemaphore(permits)
	var inside, maxInside, total int32
	var wg sync.WaitGroup
	wg.Add(10)
	for i := 0; i < 10; i++ {
		threads.Fork(func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				s.Acquire()
				n := atomic.AddInt32(&inside, 1)
				for {
					old := atomic.LoadInt32(&maxInside)
					if n <= old || atomic.CompareAndSwapInt32(&maxInside, old, n) {
						break
					}
				}
				atomic.AddInt32(&total, 1)
				atomic.AddInt32(&inside, -1)
				s.Release()
			}
		})
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	waitDone(t, done, "counting semaphore workers")
	if maxInside > permits {
		t.Fatalf("%d threads inside with %d permits", maxInside, permits)
	}
	if total != 2000 {
		t.Fatalf("total = %d", total)
	}
	if s.Permits() != permits {
		t.Fatalf("permits = %d after balanced use, want %d", s.Permits(), permits)
	}
}

func TestCountingSemaphoreTryAcquire(t *testing.T) {
	s := NewCountingSemaphore(1)
	if !s.TryAcquire() {
		t.Fatal("TryAcquire with a free permit failed")
	}
	if s.TryAcquire() {
		t.Fatal("TryAcquire with no permits succeeded")
	}
	s.Release()
	if !s.TryAcquire() {
		t.Fatal("TryAcquire after Release failed")
	}
	s.Release()
}

func TestCountingSemaphoreAlertAcquire(t *testing.T) {
	s := NewCountingSemaphore(0)
	errCh := make(chan error, 1)
	th := threads.Fork(func() { errCh <- s.AlertAcquire() })
	time.Sleep(10 * time.Millisecond)
	threads.Alert(th)
	threads.Join(th)
	if err := <-errCh; !errors.Is(err, threads.Alerted) {
		t.Fatalf("AlertAcquire returned %v, want Alerted", err)
	}
	if s.Permits() != 0 {
		t.Fatal("alerted acquire consumed a permit")
	}
}

func TestNewCountingSemaphorePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for negative permits")
		}
	}()
	NewCountingSemaphore(-1)
}

// TestQuickCountingSemaphoreConservation: random acquire/release sequences
// conserve permits.
func TestQuickCountingSemaphoreConservation(t *testing.T) {
	check := func(ops []bool) bool {
		s := NewCountingSemaphore(3)
		held := 0
		for _, acquire := range ops {
			if acquire {
				if s.TryAcquire() {
					held++
				}
			} else if held > 0 {
				s.Release()
				held--
			}
		}
		return s.Permits() == 3-held
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(41))}); err != nil {
		t.Fatal(err)
	}
}

// --- Barrier -----------------------------------------------------------------

func TestBarrierReleasesAllTogether(t *testing.T) {
	const parties = 5
	b := NewBarrier(parties)
	var before, after int32
	var wg sync.WaitGroup
	wg.Add(parties)
	for i := 0; i < parties; i++ {
		threads.Fork(func() {
			defer wg.Done()
			atomic.AddInt32(&before, 1)
			b.Await()
			// Everyone must have arrived before anyone proceeds.
			if atomic.LoadInt32(&before) != parties {
				t.Error("passed the barrier before all parties arrived")
			}
			atomic.AddInt32(&after, 1)
		})
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	waitDone(t, done, "barrier parties")
	if after != parties {
		t.Fatalf("after = %d", after)
	}
}

func TestBarrierIsCyclic(t *testing.T) {
	const parties, generations = 4, 30
	b := NewBarrier(parties)
	var tripped int32
	var wg sync.WaitGroup
	wg.Add(parties)
	for i := 0; i < parties; i++ {
		threads.Fork(func() {
			defer wg.Done()
			for g := 0; g < generations; g++ {
				if b.Await() {
					atomic.AddInt32(&tripped, 1)
				}
			}
		})
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	waitDone(t, done, "cyclic barrier generations")
	// Exactly one tripper per generation.
	if tripped != generations {
		t.Fatalf("tripped = %d, want %d", tripped, generations)
	}
}

func TestBarrierOfOne(t *testing.T) {
	b := NewBarrier(1)
	for i := 0; i < 5; i++ {
		if !b.Await() {
			t.Fatal("sole party should always trip the barrier")
		}
	}
}

// --- Latch -------------------------------------------------------------------

func TestLatch(t *testing.T) {
	l := NewLatch()
	if l.IsOpen() {
		t.Fatal("new latch open")
	}
	const waiters = 4
	var wg sync.WaitGroup
	wg.Add(waiters)
	for i := 0; i < waiters; i++ {
		threads.Fork(func() {
			defer wg.Done()
			l.Wait()
		})
	}
	time.Sleep(10 * time.Millisecond)
	l.Open()
	l.Open() // idempotent
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	waitDone(t, done, "latch waiters")
	// Late waiters pass immediately.
	l.Wait()
	if !l.IsOpen() {
		t.Fatal("latch should be open")
	}
}

// --- Pool --------------------------------------------------------------------

func TestPoolGetPut(t *testing.T) {
	p := NewPool(1, 2, 3)
	if p.Size() != 3 {
		t.Fatalf("size = %d", p.Size())
	}
	seen := map[int]bool{}
	for i := 0; i < 3; i++ {
		seen[p.Get()] = true
	}
	if len(seen) != 3 {
		t.Fatalf("got %v", seen)
	}
	if _, ok := p.TryGet(); ok {
		t.Fatal("TryGet on empty pool succeeded")
	}
	p.Put(9)
	if v, ok := p.TryGet(); !ok || v != 9 {
		t.Fatalf("TryGet = %v, %v", v, ok)
	}
}

func TestPoolBlocksUntilPut(t *testing.T) {
	p := NewPool[string]()
	got := make(chan string, 1)
	threads.Fork(func() { got <- p.Get() })
	select {
	case v := <-got:
		t.Fatalf("Get on empty pool returned %q", v)
	case <-time.After(20 * time.Millisecond):
	}
	p.Put("buffer")
	select {
	case v := <-got:
		if v != "buffer" {
			t.Fatalf("got %q", v)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Get never returned after Put")
	}
}

func TestPoolConcurrentChurn(t *testing.T) {
	p := NewPool(0, 1, 2, 3)
	const workers, rounds = 8, 500
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		threads.Fork(func() {
			defer wg.Done()
			for j := 0; j < rounds; j++ {
				item := p.Get()
				p.Put(item)
			}
		})
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	waitDone(t, done, "pool churn")
	if p.Size() != 4 {
		t.Fatalf("pool size = %d after balanced churn, want 4", p.Size())
	}
}

// --- RWLock --------------------------------------------------------------------

func TestRWLockExclusionAndSharing(t *testing.T) {
	l := NewRWLock()
	var data, torn int64
	const readers, writers, ops = 6, 2, 1500
	var wg sync.WaitGroup
	wg.Add(readers + writers)
	var shadow [2]int64
	for i := 0; i < readers; i++ {
		threads.Fork(func() {
			defer wg.Done()
			for j := 0; j < ops; j++ {
				l.RLock()
				if shadow[0] != shadow[1] {
					atomic.AddInt64(&torn, 1)
				}
				l.RUnlock()
			}
		})
	}
	for i := 0; i < writers; i++ {
		threads.Fork(func() {
			defer wg.Done()
			for j := 0; j < ops; j++ {
				l.Lock()
				data++
				shadow[0] = data
				shadow[1] = data
				l.Unlock()
			}
		})
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	waitDone(t, done, "rwlock workers")
	if torn != 0 {
		t.Fatalf("%d torn reads", torn)
	}
	if data != writers*ops {
		t.Fatalf("data = %d, want %d", data, writers*ops)
	}
}

func TestRWLockMisusePanics(t *testing.T) {
	l := NewRWLock()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("RUnlock without RLock did not panic")
			}
		}()
		l.RUnlock()
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Unlock without Lock did not panic")
			}
		}()
		l.Unlock()
	}()
}

func TestRWLockTryRLock(t *testing.T) {
	l := NewRWLock()
	if !l.TryRLock() {
		t.Fatal("TryRLock on open lock failed")
	}
	l.RUnlock()
	l.Lock()
	if l.TryRLock() {
		t.Fatal("TryRLock succeeded while write-locked")
	}
	l.Unlock()
}

// --- Future --------------------------------------------------------------------

func TestFutureSetGet(t *testing.T) {
	f := NewFuture[int]()
	if _, ok := f.TryGet(); ok {
		t.Fatal("unset future TryGet succeeded")
	}
	results := make(chan int, 3)
	var wg sync.WaitGroup
	wg.Add(3)
	for i := 0; i < 3; i++ {
		threads.Fork(func() {
			defer wg.Done()
			results <- f.Get()
		})
	}
	time.Sleep(10 * time.Millisecond)
	f.Set(42)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	waitDone(t, done, "future waiters")
	for i := 0; i < 3; i++ {
		if v := <-results; v != 42 {
			t.Fatalf("got %d", v)
		}
	}
	if !f.Done() {
		t.Fatal("future not done after Set")
	}
}

func TestFutureSetTwicePanics(t *testing.T) {
	f := NewFuture[int]()
	f.Set(1)
	defer func() {
		if recover() == nil {
			t.Fatal("second Set did not panic")
		}
	}()
	f.Set(2)
}

func TestFutureAlertGet(t *testing.T) {
	f := NewFuture[string]()
	type res struct {
		v   string
		err error
	}
	results := make(chan res, 1)
	th := threads.Fork(func() {
		v, err := f.AlertGet()
		results <- res{v, err}
	})
	time.Sleep(10 * time.Millisecond)
	threads.Alert(th)
	threads.Join(th)
	r := <-results
	if !errors.Is(r.err, threads.Alerted) {
		t.Fatalf("AlertGet = %v, want Alerted", r.err)
	}
	// The future still works for everyone else.
	f.Set("late")
	if f.Get() != "late" {
		t.Fatal("future broken after an alerted Get")
	}
}
