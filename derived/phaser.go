package derived

import (
	"time"

	"threads"
)

// Phaser is the Barrier with its generation made first-class: arrivals are
// counted per numbered phase, arrival and waiting are separable (Arrive
// does not block; AwaitAdvance waits for a phase to end), and waiting can
// carry a deadline. The shape follows the phase-ordering literature: a
// computation proceeds in phases, and no party enters phase p+1 until all
// parties have finished phase p.
type Phaser struct {
	mu       threads.Mutex //threads:guards arrived,phase
	advanced threads.Condition
	parties  int
	arrived  int
	phase    uint64
}

// NewPhaser returns a phaser for the given number of parties (≥ 1), in
// phase 0.
func NewPhaser(parties int) *Phaser {
	if parties < 1 {
		panic("derived: phaser needs at least one party")
	}
	return &Phaser{parties: parties}
}

// Phase reports the current phase number (advisory).
func (p *Phaser) Phase() uint64 {
	p.mu.Acquire()
	defer p.mu.Release()
	return p.phase
}

// Arrive records one arrival in the current phase without waiting and
// returns the phase number arrived at. The last arrival of a phase
// advances the phaser and releases the waiters — every waiter may proceed,
// so Broadcast is required.
func (p *Phaser) Arrive() uint64 {
	p.mu.Acquire()
	phase := p.phase
	p.arrived++
	if p.arrived == p.parties {
		p.arrived = 0
		p.phase++
		p.mu.Release()
		p.advanced.Broadcast()
		return phase
	}
	p.mu.Release()
	return phase
}

// AwaitAdvance blocks until the given phase has ended (a no-op if it
// already has).
func (p *Phaser) AwaitAdvance(phase uint64) {
	p.mu.Acquire()
	for p.phase == phase {
		p.advanced.Wait(&p.mu)
	}
	p.mu.Release()
}

// AwaitAdvanceDeadline is AwaitAdvance with a deadline: nil once the phase
// has ended, threads.DeadlineExceeded or threads.Alerted if the wait gave
// up first (the arrival already made stays counted either way).
func (p *Phaser) AwaitAdvanceDeadline(phase uint64, deadline time.Time) error {
	p.mu.Acquire()
	defer p.mu.Release()
	for p.phase == phase {
		if err := p.advanced.AlertWaitDeadline(&p.mu, deadline); err != nil {
			return err
		}
	}
	return nil
}

// ArriveAndAwait arrives and waits for the phase to end — the cyclic
// barrier operation. It reports whether the caller was the arrival that
// tripped the phase.
func (p *Phaser) ArriveAndAwait() (tripped bool) {
	p.mu.Acquire()
	phase := p.phase
	p.arrived++
	if p.arrived == p.parties {
		p.arrived = 0
		p.phase++
		p.mu.Release()
		p.advanced.Broadcast()
		return true
	}
	for p.phase == phase {
		p.advanced.Wait(&p.mu)
	}
	p.mu.Release()
	return false
}
