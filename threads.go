// Package threads provides the synchronization primitives of the DEC SRC
// Threads package, as formally specified in "Synchronization Primitives for
// a Multiprocessor: A Formal Specification" (Birrell, Guttag, Horning,
// Levin; SRC Research Report 20, 1987): mutexes, Mesa-style condition
// variables, binary semaphores, and alerting.
//
// The three main types are Mutex, Condition and Semaphore. All threads may
// be assumed to execute concurrently — the programmer "can reason as if
// there were as many processors as threads" — and the primitives' semantics
// are independent of how threads are assigned to processors.
//
// # Mutual exclusion
//
// A Mutex makes a group of actions on shared variables atomic with respect
// to other threads: bracket every access in Acquire/Release (or the Lock
// helper, the analogue of Modula-2+'s LOCK e DO ... END):
//
//	var m threads.Mutex
//	threads.Lock(&m, func() {
//	    // critical section: runs start-to-finish without any other
//	    // thread entering a critical section on m
//	})
//
// # Condition variables
//
// A Condition suspends a thread until some other thread's action. A
// condition variable is always associated with a mutex-protected predicate;
// because return from Wait is only a hint, the predicate is re-evaluated in
// a loop:
//
//	m.Acquire()
//	for !predicate() {
//	    c.Wait(&m)
//	}
//	// ... use the protected state ...
//	m.Release()
//
// After making the predicate true, call Signal (one waiter can proceed) or
// Broadcast (all waiters must re-check). Signal is an efficiency measure:
// it is correct only when every waiter waits for the same predicate, and it
// may unblock more than one thread.
//
// # Semaphores
//
// Semaphore provides binary P/V. There is no notion of holding a semaphore
// and V has no precondition, so P and V need not be textually linked. The
// package discourages semaphores for ordinary data protection — mutexes and
// condition variables carry more structure — but they are required for
// synchronizing with interrupt-style code that cannot block: the handler
// thread calls P, the interrupt source calls V.
//
// # Alerting
//
// Alert(t) is a polite interrupt: a request that thread t give up a blocked
// AlertWait or AlertP (which then return Alerted) or notice the request via
// TestAlert. It is typically used for timeouts and aborts, where the
// decision to interrupt happens at a higher abstraction level than the wait.
//
// # Deadlines and cancellation
//
// The deadline variants — Condition.AlertWaitDeadline,
// Semaphore.AlertPDeadline, Mutex.AcquireDeadline — are alertable waits
// that also give up when a deadline passes, returning DeadlineExceeded.
// They are built on an internal timer wheel that delivers the deadline by
// Alert, and they cancel-and-drain their own timer entry on every exit
// path, so they are immune to the stale-alert race of the hand-rolled
// pattern (arrange an Alert with time.AfterFunc, Stop the timer on
// completion): when completion races the timer, Stop can lose, and the
// leftover alert poisons the thread's next alertable wait. Prefer the
// deadline variants for timeouts; see Alert for the drain obligation the
// hand-rolled pattern carries. WithContext and AlertOnDone bridge
// context.Context cancellation onto the same mechanism:
//
//	err := threads.WithContext(ctx, func() error {
//	    return c.AlertWait(&m)
//	})
//
// # Threads
//
// The primitives identify callers by Thread. Goroutines created by Fork are
// threads; any other goroutine is adopted on first use. Thread creation:
//
//	t := threads.Fork(func() { ... })
//	threads.Alert(t)
//	threads.Join(t)
//
// # Fidelity
//
// The implementation follows the paper's Firefly implementation: an
// uncontended Acquire/Release pair runs entirely in "user code" (one
// test-and-set and one clear, no queue operations); the slow paths run
// under a spin lock in a Nub layer that manages queues of blocked threads;
// condition variables are (eventcount, queue) pairs, so Broadcast handles
// arbitrarily many threads racing through the wakeup-waiting window. See
// internal/core for the mechanism and DESIGN.md for the full map from the
// paper to this repository.
package threads

import "threads/internal/core"

// Thread identifies a thread of control (the specification's SELF values
// and the elements of Mutex, Condition and the alerts set).
type Thread = core.Thread

// Mutex is a mutual-exclusion lock: a Thread-valued specification variable,
// INITIALLY NIL. The zero value is ready to use.
//
//	ATOMIC PROCEDURE Acquire(VAR m: Mutex)
//	  MODIFIES AT MOST [m]  WHEN m = NIL  ENSURES m' = SELF
//	ATOMIC PROCEDURE Release(VAR m: Mutex)
//	  REQUIRES m = SELF  MODIFIES AT MOST [m]  ENSURES m' = NIL
type Mutex = core.Mutex

// Condition is a condition variable: a SET OF Thread, INITIALLY {}. The
// zero value is ready to use. Wait atomically releases the associated
// mutex and suspends the caller; Signal unblocks at least one waiter (maybe
// more); Broadcast unblocks all. Return from Wait is a hint — re-evaluate
// the predicate.
type Condition = core.Condition

// Semaphore is a binary semaphore, INITIALLY available. The zero value is
// ready to use.
//
//	ATOMIC PROCEDURE P(VAR s: Semaphore)
//	  MODIFIES AT MOST [s]  WHEN s = available  ENSURES s' = unavailable
//	ATOMIC PROCEDURE V(VAR s: Semaphore)
//	  MODIFIES AT MOST [s]  ENSURES s' = available
type Semaphore = core.Semaphore

// Stats is a snapshot of the package's contention counters (see
// EnableStats).
type Stats = core.Stats

// Alerted is returned by AlertWait and AlertP when the wait was interrupted
// by Alert; it corresponds to the specification's EXCEPTION Alerted.
var Alerted = core.Alerted

// Fork runs fn as a new thread and returns its handle.
func Fork(fn func()) *Thread { return core.Fork(fn) }

// ForkNamed is Fork with a thread name for diagnostics.
func ForkNamed(name string, fn func()) *Thread { return core.ForkNamed(name, fn) }

// ForkPri is Fork with an initial scheduling priority (larger is more
// urgent, default 0). The paper's Nub "does priority scheduling and time
// slicing"; on this implementation the priority orders wakeup selection:
// when a Release, V, Signal or Broadcast wakes a blocked thread, the
// highest-priority waiter is chosen, FIFO within a band, so equal-priority
// programs keep the old fairness exactly. A thread's priority can be
// changed later with (*Thread).SetPriority.
func ForkPri(pri int, fn func()) *Thread { return core.ForkPri(pri, fn) }

// ForkNamedPri combines ForkNamed and ForkPri.
func ForkNamedPri(name string, pri int, fn func()) *Thread { return core.ForkNamedPri(name, pri, fn) }

// Join blocks until a forked thread's function has returned.
func Join(t *Thread) { core.Join(t) }

// Self returns the calling thread, adopting the goroutine if it was not
// created by Fork.
func Self() *Thread { return core.Self() }

// Detach removes an adopted goroutine's thread registration. Call it before
// an adopted goroutine exits in long-lived programs; Fork-created threads
// clean up automatically.
func Detach() { core.Detach() }

// Lock brackets body with m.Acquire and m.Release — the LOCK m DO ... END
// construct. Release runs even if body panics.
func Lock(m *Mutex, body func()) { core.Lock(m, body) }

// Alert requests that thread t raise Alerted: it makes t's pending-alert
// flag true and wakes t if it is blocked in AlertWait or AlertP.
//
//	ATOMIC PROCEDURE Alert(t: Thread)
//	  MODIFIES AT MOST [alerts]  ENSURES alerts' = insert(alerts, t)
//
// Drain obligation: an alert, once inserted, persists until t consumes it
// (TestAlert, or the Alerted return of AlertWait/AlertP). Code that uses
// Alert for a timeout which can race the awaited event must, when the event
// wins, have t drain the stale alert with TestAlert before t's next
// alertable wait — cancelling the timer is not enough, since a Stop after
// the timer function has run does not retract the Alert. The deadline
// variants (AlertWaitDeadline, AlertPDeadline, AcquireDeadline) and the
// context bridge (WithContext, AlertOnDone) discharge this obligation
// internally; prefer them for timeouts.
func Alert(t *Thread) { core.Alert(t) }

// TestAlert reports whether the calling thread has a pending alert,
// consuming it.
//
//	ATOMIC PROCEDURE TestAlert() RETURNS (b: bool)
//	  ENSURES (b = (SELF IN alerts)) & (alerts' = delete(alerts, SELF))
func TestAlert() bool { return core.TestAlert() }

// AlertPending reports whether t has an undelivered alert without consuming
// it (an extension for monitoring and tests).
func AlertPending(t *Thread) bool { return core.AlertPending(t) }

// EnableStats turns contention statistics on or off and returns the
// previous setting. With statistics off the primitives pay one predictable
// branch per operation.
func EnableStats(on bool) bool { return core.EnableStats(on) }

// SnapshotStats returns the current values of the contention counters.
func SnapshotStats() Stats { return core.SnapshotStats() }

// ResetStats zeroes the contention counters.
func ResetStats() { core.ResetStats() }

// SetChecking enables a debugging mode in which mutexes record their
// holders: Release by a non-holder and recursive Acquire panic instead of
// silently misbehaving. It returns the previous setting. The production
// representation, like the paper's, records no holder.
func SetChecking(on bool) bool { return core.SetChecking(on) }
