#!/usr/bin/env sh
# Core-count scaling sweep matrix runner.
#
# Wraps `threadsbench -sweep` with the environment control that makes
# scaling curves comparable run to run: pinning to a fixed CPU set when
# taskset is available (so the OS does not migrate the benchmark across
# sockets mid-sample), and a fixed GOGC (so GC pacing does not drift with
# heap-size luck between runs).
#
# Usage:
#   bench/sweep.sh                       # sweep, compare against BENCH_2.json
#   bench/sweep.sh -json BENCH_2.json    # regenerate the committed curves
#   CORES=1,2,4,8 SAMPLES=5 bench/sweep.sh -timed
#   OUT=sweep.json bench/sweep.sh -json "$OUT" -baseline BENCH_2.json
#
# Environment:
#   CORES    comma-separated GOMAXPROCS values (default: 1,2,4,... to nproc)
#   SAMPLES  runs per core count, best kept (default: 3)
#   GOGC     garbage-collector target percent (default: 100, pinned)
#   PIN      CPU list for taskset, e.g. 0-7 (default: all; set to pin)
#
# Any extra arguments are passed through to threadsbench, after the sweep
# flags — so a -json/-baseline/-timed argument wins over the default.
set -eu

cd "$(dirname "$0")/.."

ncpu=$( (command -v nproc >/dev/null 2>&1 && nproc) || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
if [ -z "${CORES:-}" ]; then
    CORES=""
    k=1
    while [ "$k" -lt "$ncpu" ]; do
        CORES="${CORES:+$CORES,}$k"
        k=$((k * 2))
    done
    CORES="${CORES:+$CORES,}$ncpu"
fi
SAMPLES="${SAMPLES:-3}"
export GOGC="${GOGC:-100}"

runner=""
if [ -n "${PIN:-}" ] && command -v taskset >/dev/null 2>&1; then
    runner="taskset -c $PIN"
    echo "sweep: pinned to CPUs $PIN" >&2
fi

echo "sweep: cores $CORES x $SAMPLES samples on $ncpu-CPU host (GOGC=$GOGC)" >&2

# Default action: enforce the committed curves. Overridden if the caller
# passes their own -json/-baseline.
action="-baseline BENCH_2.json"
for arg in "$@"; do
    case "$arg" in
    -json|-baseline) action="" ;;
    esac
done

# shellcheck disable=SC2086 # runner and action are intentionally word-split
exec $runner go run ./cmd/threadsbench -sweep -cores "$CORES" -samples "$SAMPLES" $action "$@"
