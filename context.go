package threads

import (
	"context"
	"errors"
	"sync/atomic"

	"threads/internal/core"
	"threads/internal/spinlock"
)

// DeadlineExceeded is returned by the deadline variants — AlertWaitDeadline,
// AlertPDeadline and AcquireDeadline — when the wait ended because its
// deadline fired. It matches context.DeadlineExceeded under errors.Is.
//
// The deadline variants are built on the package's timer wheel: each wait
// arms one timer entry that delivers the deadline by Alert, and every exit
// path cancels-and-drains its own entry, so a deadline that fires after the
// wait is satisfied can never poison a later wait — the stale-alert race of
// the hand-rolled time.AfterFunc + Alert + timer.Stop pattern is fixed by
// construction. See the Alert documentation for the drain obligation the
// hand-rolled pattern carries.
var DeadlineExceeded = core.DeadlineExceeded

// ctxAlert states, mirroring the timer wheel's entry state machine: the
// stop/fire race is resolved by one CAS, and a loser of the fire race waits
// out the delivery so the alert can be drained before stop returns.
const (
	ctxArmed uint32 = iota
	ctxFiring
	ctxFired
	ctxCancelled
)

// AlertOnDone arranges for t to be alerted when ctx is done, bridging
// context-style cancellation into the paper's alerting world. The returned
// stop ends the arrangement and reports whether the alert was delivered
// (false means delivery was prevented and no drain is needed).
//
// The intended shape has the guarded thread itself call stop on every exit
// path, like the deadline variants do internally:
//
//	stop := threads.AlertOnDone(ctx, threads.Self())
//	err := c.AlertWait(&m)
//	if stop() && errors.Is(err, threads.Alerted) {
//	    err = ctx.Err() // the context, not a user Alert, ended the wait
//	}
//
// When stop is called by t itself it also drains a delivered-but-unconsumed
// alert, so a context that fires after the wait is satisfied cannot poison
// t's next alertable wait. Called from any other thread, stop cannot drain
// (TestAlert consumes only the caller's own alert); the true return then
// tells the caller t may still have the alert pending. As with any consumer
// of the single-bit alerts set, a drain may also consume a user Alert that
// merged with the context's — exactly as if t had called TestAlert itself.
func AlertOnDone(ctx context.Context, t *Thread) (stop func() (fired bool)) {
	var state atomic.Uint32
	inner := context.AfterFunc(ctx, func() {
		if state.CompareAndSwap(ctxArmed, ctxFiring) {
			core.Alert(t)
			state.Store(ctxFired)
		}
	})
	return func() bool {
		if state.CompareAndSwap(ctxArmed, ctxCancelled) {
			inner()
			return false
		}
		for {
			switch state.Load() {
			case ctxFired:
				// Consume the fired state so stop is idempotent: only the
				// call that observes the delivery drains and reports it.
				if !state.CompareAndSwap(ctxFired, ctxCancelled) {
					return false
				}
				if core.Self() == t {
					_ = core.TestAlert() // the drain: a stale context alert is consumed here by design
				}
				return true
			case ctxCancelled:
				return false // stop already ran
			default:
				spinlock.Pause(16) // firing: the delivery is one Alert call away
			}
		}
	}
}

// WithContext runs body — typically one alertable wait, or a loop of them —
// with the calling thread alerted when ctx is done, and maps the outcome:
// an Alerted return caused by the context becomes ctx.Err()
// (context.Canceled or context.DeadlineExceeded), while a genuine user
// Alert passes through unchanged. A context already done returns its error
// without running body.
//
//	err := threads.WithContext(ctx, func() error {
//	    return c.AlertWait(&m)
//	})
//
// The arrangement is stopped and drained on every return path, so a
// context firing after body completes never poisons a later wait.
func WithContext(ctx context.Context, body func() error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	stop := AlertOnDone(ctx, core.Self())
	err := body()
	if stop() && errors.Is(err, Alerted) {
		return ctx.Err()
	}
	return err
}
