// Timeouts and aborts via alerting — the facility's intended use: "Alerting
// provides a polite form of interrupt ... typically to implement things
// such as timeouts and aborts. It allows a thread to request that another
// thread desist from a computation," at a higher abstraction level than the
// one in which the thread is blocked.
//
// The timeout half also demonstrates the stale-alert race and both ways
// out of it. An Alert is a persistent single bit: once the timer fires,
// timer.Stop cannot retract it, and if the call completed first the
// leftover alert poisons the thread's NEXT alertable wait. withTimeout
// shows the manual discipline (drain with TestAlert on the loser's path);
// awaitDeadline shows the packaged form — AlertWaitDeadline runs the same
// cancel-and-drain epilogue internally on every exit path.
package main

import (
	"errors"
	"fmt"
	"time"

	"threads"
)

// rpc models a remote call that may never complete: the reply arrives via
// a condition variable that, in the failure case, is never signalled.
type rpc struct {
	mu    threads.Mutex //threads:guards done,value
	reply threads.Condition
	done  bool
	value string
}

// await blocks until the reply arrives or the caller is alerted; it uses
// AlertWait because this is exactly the point at which the thread should
// respond to an Alert.
func (r *rpc) await() (string, error) {
	r.mu.Acquire()
	defer r.mu.Release()
	for !r.done {
		if err := r.reply.AlertWait(&r.mu); err != nil {
			return "", err // Alerted: the timeout fired
		}
	}
	return r.value, nil
}

// awaitDeadline is await with the deadline packaged into the wait itself:
// no timer, no Alert plumbing, no epilogue to get wrong. The timer wheel
// alerts this thread if the deadline passes, and AlertWaitDeadline
// cancels-and-drains its own timer entry on every return path, so the
// completion/deadline race cannot leak an alert no matter who wins.
func (r *rpc) awaitDeadline(deadline time.Time) (string, error) {
	r.mu.Acquire()
	defer r.mu.Release()
	for !r.done {
		if err := r.reply.AlertWaitDeadline(&r.mu, deadline); err != nil {
			return "", err // DeadlineExceeded, or Alerted by someone else
		}
	}
	return r.value, nil
}

func (r *rpc) complete(v string) {
	threads.Lock(&r.mu, func() {
		r.done = true
		r.value = v
	})
	r.reply.Signal()
}

// withTimeout runs call in a worker thread and alerts it if the deadline
// passes — the timer knows nothing about the condition variable the worker
// is blocked on; it only holds the thread handle.
//
// The delicate part is the epilogue. When the call completes first,
// timer.Stop races the firing: Stop() == false means the AfterFunc ran (or
// is running) and its Alert targets the worker. Stopping the timer does
// not retract that alert, so the worker itself must consume it with
// TestAlert before doing anything else alertable — otherwise the stale bit
// ends the worker's next AlertWait with a timeout that never happened.
// This is the discipline the deadline variants (awaitDeadline above)
// implement by construction; do it manually only when, as here, the timer
// and the blocked thread are deliberately decoupled.
func withTimeout(d time.Duration, call func() (string, error)) (string, error) {
	type outcome struct {
		v   string
		err error
	}
	results := make(chan outcome, 1)
	mustDrain := make(chan bool)
	worker := threads.ForkNamed("rpc-worker", func() {
		v, err := call()
		results <- outcome{v, err}
		// Drain epilogue, on the worker because the alert is ours. If the
		// timer fired but the call still returned normally, the alert is
		// (or is about to be) pending here; spin it out. If the call
		// returned Alerted, the wait itself consumed the fire.
		if <-mustDrain && !errors.Is(err, threads.Alerted) {
			for !threads.TestAlert() {
				// The fire is in flight: the AfterFunc goroutine holds our
				// handle and its Alert is about to land.
			}
		}
	})
	timer := time.AfterFunc(d, func() { defer threads.Detach(); threads.Alert(worker) })
	res := <-results
	mustDrain <- !timer.Stop()
	threads.Join(worker)
	return res.v, res.err
}

func main() {
	// Case 1: the reply arrives in time.
	fast := &rpc{}
	go func() {
		// Raw goroutine using the primitives: detach the adopted Thread on
		// exit (complete's Acquire/Signal adopt it under checking/tracing).
		defer threads.Detach()
		time.Sleep(10 * time.Millisecond)
		fast.complete("pong")
	}()
	v, err := withTimeout(5*time.Second, fast.await)
	fmt.Printf("fast call: value=%q err=%v\n", v, err)

	// Case 2: the reply never arrives; the timeout alert unblocks the
	// worker, which returns threads.Alerted.
	slow := &rpc{}
	v, err = withTimeout(30*time.Millisecond, slow.await)
	fmt.Printf("slow call: value=%q err=%v (timed out=%v)\n",
		v, err, errors.Is(err, threads.Alerted))

	// Case 2, deadline form: the same timeout without any timer plumbing —
	// the wait carries the deadline and cleans up after itself.
	stuck := &rpc{}
	v, err = withTimeout(5*time.Second, func() (string, error) {
		return stuck.awaitDeadline(time.Now().Add(30 * time.Millisecond))
	})
	fmt.Printf("deadline call: value=%q err=%v (deadline exceeded=%v)\n",
		v, err, errors.Is(err, threads.DeadlineExceeded))

	// Case 3: an abort requested while the worker is computing, observed
	// via TestAlert at a cancellation point.
	worker := threads.ForkNamed("cruncher", func() {
		for i := 0; ; i++ {
			if threads.TestAlert() {
				fmt.Printf("cruncher aborted politely at iteration %d\n", i)
				return
			}
			time.Sleep(time.Millisecond)
		}
	})
	time.Sleep(20 * time.Millisecond)
	threads.Alert(worker)
	threads.Join(worker)
}
