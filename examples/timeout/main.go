// Timeouts and aborts via alerting — the facility's intended use: "Alerting
// provides a polite form of interrupt ... typically to implement things
// such as timeouts and aborts. It allows a thread to request that another
// thread desist from a computation," at a higher abstraction level than the
// one in which the thread is blocked.
package main

import (
	"errors"
	"fmt"
	"time"

	"threads"
)

// rpc models a remote call that may never complete: the reply arrives via
// a condition variable that, in the failure case, is never signalled.
type rpc struct {
	mu    threads.Mutex
	reply threads.Condition
	done  bool
	value string
}

// await blocks until the reply arrives or the caller is alerted; it uses
// AlertWait because this is exactly the point at which the thread should
// respond to an Alert.
func (r *rpc) await() (string, error) {
	r.mu.Acquire()
	defer r.mu.Release()
	for !r.done {
		if err := r.reply.AlertWait(&r.mu); err != nil {
			return "", err // Alerted: the timeout fired
		}
	}
	return r.value, nil
}

func (r *rpc) complete(v string) {
	threads.Lock(&r.mu, func() {
		r.done = true
		r.value = v
	})
	r.reply.Signal()
}

// withTimeout runs call in a worker thread and alerts it if the deadline
// passes — the timer knows nothing about the condition variable the worker
// is blocked on; it only holds the thread handle.
func withTimeout(d time.Duration, call func() (string, error)) (string, error) {
	type outcome struct {
		v   string
		err error
	}
	results := make(chan outcome, 1)
	worker := threads.ForkNamed("rpc-worker", func() {
		v, err := call()
		results <- outcome{v, err}
	})
	timer := time.AfterFunc(d, func() { defer threads.Detach(); threads.Alert(worker) })
	defer timer.Stop()
	threads.Join(worker)
	res := <-results
	return res.v, res.err
}

func main() {
	// Case 1: the reply arrives in time.
	fast := &rpc{}
	go func() {
		// Raw goroutine using the primitives: detach the adopted Thread on
		// exit (complete's Acquire/Signal adopt it under checking/tracing).
		defer threads.Detach()
		time.Sleep(10 * time.Millisecond)
		fast.complete("pong")
	}()
	v, err := withTimeout(5*time.Second, fast.await)
	fmt.Printf("fast call: value=%q err=%v\n", v, err)

	// Case 2: the reply never arrives; the timeout alert unblocks the
	// worker, which returns threads.Alerted.
	slow := &rpc{}
	v, err = withTimeout(30*time.Millisecond, slow.await)
	fmt.Printf("slow call: value=%q err=%v (timed out=%v)\n",
		v, err, errors.Is(err, threads.Alerted))

	// Case 3: an abort requested while the worker is computing, observed
	// via TestAlert at a cancellation point.
	worker := threads.ForkNamed("cruncher", func() {
		for i := 0; ; i++ {
			if threads.TestAlert() {
				fmt.Printf("cruncher aborted politely at iteration %d\n", i)
				return
			}
			time.Sleep(time.Millisecond)
		}
	})
	time.Sleep(20 * time.Millisecond)
	threads.Alert(worker)
	threads.Join(worker)
}
