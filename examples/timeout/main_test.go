package main

import (
	"errors"
	"testing"
	"time"

	"threads"
)

// TestTimeoutAlertedPath pins the behavior the example demonstrates: a
// reply that never arrives is cut short by the timer's Alert, and the
// worker surfaces it as threads.Alerted (the specification's EXCEPTION
// Alerted) rather than blocking forever.
func TestTimeoutAlertedPath(t *testing.T) {
	slow := &rpc{}
	start := time.Now()
	v, err := withTimeout(30*time.Millisecond, slow.await)
	if !errors.Is(err, threads.Alerted) {
		t.Fatalf("await after timeout: v=%q err=%v, want threads.Alerted", v, err)
	}
	if v != "" {
		t.Errorf("alerted await returned value %q, want empty", v)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("timeout path took %v; the Alert did not unblock AlertWait", elapsed)
	}
}

// TestTimeoutReplyInTime is the complementary case: when the reply beats
// the deadline, no alert fires and the value comes through.
func TestTimeoutReplyInTime(t *testing.T) {
	fast := &rpc{}
	go func() {
		defer threads.Detach()
		time.Sleep(5 * time.Millisecond)
		fast.complete("pong")
	}()
	v, err := withTimeout(5*time.Second, fast.await)
	if err != nil {
		t.Fatalf("await: %v", err)
	}
	if v != "pong" {
		t.Fatalf("await = %q, want pong", v)
	}
}
