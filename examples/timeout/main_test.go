package main

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"threads"
)

// TestTimeoutAlertedPath pins the behavior the example demonstrates: a
// reply that never arrives is cut short by the timer's Alert, and the
// worker surfaces it as threads.Alerted (the specification's EXCEPTION
// Alerted) rather than blocking forever.
func TestTimeoutAlertedPath(t *testing.T) {
	slow := &rpc{}
	start := time.Now()
	v, err := withTimeout(30*time.Millisecond, slow.await)
	if !errors.Is(err, threads.Alerted) {
		t.Fatalf("await after timeout: v=%q err=%v, want threads.Alerted", v, err)
	}
	if v != "" {
		t.Errorf("alerted await returned value %q, want empty", v)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("timeout path took %v; the Alert did not unblock AlertWait", elapsed)
	}
}

// TestTimeoutReplyInTime is the complementary case: when the reply beats
// the deadline, no alert fires and the value comes through.
func TestTimeoutReplyInTime(t *testing.T) {
	fast := &rpc{}
	go func() {
		defer threads.Detach()
		time.Sleep(5 * time.Millisecond)
		fast.complete("pong")
	}()
	v, err := withTimeout(5*time.Second, fast.await)
	if err != nil {
		t.Fatalf("await: %v", err)
	}
	if v != "pong" {
		t.Fatalf("await = %q, want pong", v)
	}
}

// TestDeadlineAwaitPath pins the deadline form: no timer plumbing, and the
// error is DeadlineExceeded (which also matches context.DeadlineExceeded),
// not Alerted.
func TestDeadlineAwaitPath(t *testing.T) {
	stuck := &rpc{}
	v, err := stuck.awaitDeadline(time.Now().Add(30 * time.Millisecond))
	if !errors.Is(err, threads.DeadlineExceeded) {
		t.Fatalf("awaitDeadline = %q, %v, want DeadlineExceeded", v, err)
	}
}

// staleAlertRace forces the completion/deadline race into the losing
// position, deterministically: the wait is satisfied first, the timer
// fires second (here: a direct Alert standing in for the AfterFunc that
// timer.Stop failed to stop), and only then does the epilogue run. It
// returns the outcome of the victim thread's next alertable wait — a wait
// nothing ever signals, carried by a generous deadline, so a clean thread
// reports DeadlineExceeded and a poisoned one reports Alerted immediately.
func staleAlertRace(t *testing.T, drain bool) error {
	t.Helper()
	r := &rpc{}
	satisfied := make(chan struct{})
	fired := make(chan struct{})
	probe := make(chan error, 1)
	worker := threads.ForkNamed("victim", func() {
		v, err := r.await()
		if err != nil || v != "pong" {
			probe <- fmt.Errorf("await = %q, %v before any alert", v, err)
			return
		}
		satisfied <- struct{}{}
		<-fired // the timer has lost the Stop race: a stale alert is pending
		if drain {
			// The fixed epilogue (what withTimeout and the *Deadline
			// variants do): consume the fire before the next wait.
			if !threads.TestAlert() {
				probe <- fmt.Errorf("drain found no pending alert")
				return
			}
		}
		// else: the old epilogue — timer.Stop() alone, which cannot
		// retract an alert already delivered.
		idle := &rpc{} // never completed: only the deadline can end this wait
		_, err = idle.awaitDeadline(time.Now().Add(2 * time.Second))
		probe <- err
	})
	r.complete("pong")
	<-satisfied
	threads.Alert(worker) // the late fire
	close(fired)
	err := <-probe
	threads.Join(worker)
	return err
}

// TestOldPatternLeaksStaleAlert pins down the bug the original withTimeout
// had: with no drain, the leftover alert from a timer that fired after the
// call completed ends the thread's next alertable wait with a timeout that
// never happened. (If this test ever fails, alerts stopped persisting and
// the primitives broke — the race did not get better.)
func TestOldPatternLeaksStaleAlert(t *testing.T) {
	err := staleAlertRace(t, false)
	if !errors.Is(err, threads.Alerted) {
		t.Fatalf("next wait after the undrained race = %v, want Alerted (the stale-alert leak)", err)
	}
}

// TestDrainEpilogueProtectsNextWait is the same forced race with the fixed
// epilogue: the drain consumes the fire and the next wait runs to its own
// deadline untouched.
func TestDrainEpilogueProtectsNextWait(t *testing.T) {
	err := staleAlertRace(t, true)
	if !errors.Is(err, threads.DeadlineExceeded) {
		t.Fatalf("next wait after the drained race = %v, want DeadlineExceeded", err)
	}
}

// TestWithTimeoutSurvivesTheRace hammers the fixed withTimeout at the racy
// boundary: completions arriving around the deadline. Every outcome must
// be one of the two legal ones, and no run may deadlock or leak an alert
// past its own worker.
func TestWithTimeoutSurvivesTheRace(t *testing.T) {
	for i := 0; i < 50; i++ {
		r := &rpc{}
		go func() {
			defer threads.Detach()
			time.Sleep(time.Duration(i%3) * 50 * time.Microsecond)
			r.complete("pong")
		}()
		v, err := withTimeout(time.Duration((i+1)%3)*50*time.Microsecond, r.await)
		switch {
		case err == nil && v == "pong":
		case errors.Is(err, threads.Alerted) && v == "":
		default:
			t.Fatalf("iteration %d: withTimeout = %q, %v", i, v, err)
		}
	}
}
