// A three-stage image-processing-style pipeline built from the derived
// synchronization objects: a buffer Pool (the paper's canonical Signal
// example — "freeing a buffer back into a pool"), bounded hand-off queues,
// a Barrier between batches, and a Future for the final result.
package main

import (
	"fmt"

	"threads"
	"threads/derived"
)

// queue is a tiny bounded hand-off built straight on the primitives.
type queue struct {
	mu       threads.Mutex //threads:guards items
	nonEmpty threads.Condition
	nonFull  threads.Condition
	items    []int
	capacity int
}

func newQueue(capacity int) *queue {
	return &queue{capacity: capacity}
}

func (q *queue) put(v int) {
	q.mu.Acquire()
	for len(q.items) == q.capacity {
		q.nonFull.Wait(&q.mu)
	}
	q.items = append(q.items, v)
	q.mu.Release()
	q.nonEmpty.Signal()
}

func (q *queue) get() int {
	q.mu.Acquire()
	for len(q.items) == 0 {
		q.nonEmpty.Wait(&q.mu)
	}
	v := q.items[0]
	q.items = q.items[1:]
	q.mu.Release()
	q.nonFull.Signal()
	return v
}

func main() {
	const (
		batches   = 4
		batchSize = 100
	)
	// A pool of 4 reusable "frame buffers" shared by the whole pipeline;
	// stages must recycle them or the source stalls — backpressure via
	// Signal, exactly the paper's pool idiom.
	buffers := derived.NewPool(0, 1, 2, 3)

	stage1 := newQueue(2) // source → square
	stage2 := newQueue(2) // square → accumulate
	barrier := derived.NewBarrier(3)
	result := derived.NewFuture[int]()

	// Source: claims a frame buffer per item (backpressure: with all four
	// buffers in flight the source stalls until a stage recycles one).
	threads.ForkNamed("source", func() {
		for b := 0; b < batches; b++ {
			for i := 0; i < batchSize; i++ {
				buf := buffers.Get()
				stage1.put(b*batchSize + i)
				buffers.Put(buf)
			}
			barrier.Await()
		}
	})

	// Transform stage.
	threads.ForkNamed("square", func() {
		for b := 0; b < batches; b++ {
			for i := 0; i < batchSize; i++ {
				v := stage1.get()
				stage2.put(v * v)
			}
			barrier.Await()
		}
	})

	// Sink: accumulates and publishes the final checksum.
	threads.ForkNamed("sink", func() {
		sum := 0
		for b := 0; b < batches; b++ {
			for i := 0; i < batchSize; i++ {
				sum += stage2.get()
			}
			fmt.Printf("batch %d complete\n", b+1)
			barrier.Await()
		}
		result.Set(sum)
	})

	// The main goroutine (an adopted thread) waits on the future.
	sum := result.Get()
	n := batches * batchSize
	want := (n - 1) * n * (2*n - 1) / 6 // sum of squares 0..n-1
	fmt.Printf("checksum %d (want %d, match=%v)\n", sum, want, sum == want)
}
