// Quickstart: the canonical monitor pattern with the Threads primitives —
// a mutex-protected queue, a condition variable, and the predicate loop
// ("return from Wait is only a hint").
package main

import (
	"fmt"

	"threads"
)

func main() {
	var (
		mu    threads.Mutex
		ready threads.Condition
		queue []string
	)

	// A consumer thread: enter the critical section, wait until the
	// predicate (non-empty queue) holds, take an item.
	consumer := threads.Fork(func() {
		for received := 0; received < 3; received++ {
			mu.Acquire()
			for len(queue) == 0 { // re-evaluate: the return is a hint
				ready.Wait(&mu)
			}
			item := queue[0]
			queue = queue[1:]
			mu.Release()
			fmt.Println("consumed:", item)
		}
	})

	// The producer uses the LOCK m DO ... END sugar; Signal after leaving
	// the critical section is the recommended pattern.
	for _, item := range []string{"first", "second", "third"} {
		threads.Lock(&mu, func() {
			queue = append(queue, item)
		})
		ready.Signal()
	}

	threads.Join(consumer)
	fmt.Println("done")
}
