// Synchronizing with interrupt routines via semaphores — the one use the
// paper says requires semaphores: "an interrupt routine cannot protect
// shared data with a mutex — because the interrupt might have pre-empted a
// thread in a critical section protected by that mutex — and using Wait and
// Signal to synchronize requires use of an associated mutex. Instead, a
// thread waits for an interrupt routine action by calling P(sem), and the
// interrupt routine unblocks it by calling V(sem)."
//
// The "device" here is a raw goroutine that delivers interrupts on a timer;
// like a real interrupt routine it never blocks and touches only V and a
// lock-free ring buffer.
package main

import (
	"fmt"
	"sync/atomic"
	"time"

	"threads"
)

const ringSize = 16

// device is a simulated input device: the interrupt routine writes bytes
// into a single-producer/single-consumer ring and Vs the semaphore.
type device struct {
	ring [ringSize]byte
	head atomic.Uint64 // written by the interrupt routine
	tail atomic.Uint64 // written by the handler thread
	sem  threads.Semaphore
}

// interrupt is the interrupt routine: non-blocking, no mutexes.
func (d *device) interrupt(b byte) {
	h := d.head.Load()
	if h-d.tail.Load() == ringSize {
		return // overrun: drop, as real devices do
	}
	d.ring[h%ringSize] = b
	d.head.Store(h + 1)
	d.sem.V() // unblock the handler; V never blocks
}

// read blocks the calling thread until the device has data.
func (d *device) read() byte {
	for {
		t := d.tail.Load()
		if d.head.Load() != t {
			b := d.ring[t%ringSize]
			d.tail.Store(t + 1)
			return b
		}
		d.sem.P() // wait for an interrupt-routine action
	}
}

func main() {
	d := &device{}
	d.sem.P() // drain the initial availability: P now waits for V

	message := []byte("firefly")
	received := make([]byte, 0, len(message))

	handler := threads.ForkNamed("interrupt-handler", func() {
		for len(received) < len(message) {
			received = append(received, d.read())
		}
	})

	// The interrupt source: a timer-driven goroutine standing in for the
	// hardware. It may fire while the handler is anywhere — including
	// inside critical sections of other mutexes — which is exactly why it
	// may only use V.
	go func() {
		// This goroutine was not created by Fork; if a primitive path ever
		// adopts it (V with tracing on, for example), detaching on exit
		// keeps the goroutine→Thread registry from growing.
		defer threads.Detach()
		for _, b := range message {
			time.Sleep(2 * time.Millisecond)
			d.interrupt(b)
		}
	}()

	threads.Join(handler)
	fmt.Printf("handler received %q via %d interrupts\n", received, len(received))
}
