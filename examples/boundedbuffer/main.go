// Bounded buffer: the full producer-consumer monitor with two condition
// variables (nonEmpty, nonFull), multiple producers and consumers, and
// contention statistics — the workload the paper's primitives were designed
// around, instrumented with the package's contention counters.
package main

import (
	"fmt"
	"sync/atomic"

	"threads"
)

const (
	producers = 3
	consumers = 3
	perProd   = 10000
	capacity  = 8
)

type buffer struct {
	mu       threads.Mutex //threads:guards items
	nonEmpty threads.Condition
	nonFull  threads.Condition
	items    []int
}

func (b *buffer) put(v int) {
	b.mu.Acquire()
	for len(b.items) == capacity {
		b.nonFull.Wait(&b.mu)
	}
	b.items = append(b.items, v)
	b.mu.Release()
	// Only one consumer can benefit from one new item: Signal, not
	// Broadcast ("using Signal is preferable (for efficiency) when only
	// one blocked thread can benefit from the change").
	b.nonEmpty.Signal()
}

func (b *buffer) get() int {
	b.mu.Acquire()
	for len(b.items) == 0 {
		b.nonEmpty.Wait(&b.mu)
	}
	v := b.items[0]
	b.items = b.items[1:]
	b.mu.Release()
	b.nonFull.Signal()
	return v
}

func main() {
	threads.EnableStats(true)

	var b buffer
	var produced, consumed atomic.Int64

	var workers []*threads.Thread
	for p := 0; p < producers; p++ {
		p := p
		workers = append(workers, threads.ForkNamed(fmt.Sprintf("producer-%d", p), func() {
			for i := 0; i < perProd; i++ {
				b.put(p*perProd + i)
				produced.Add(1)
			}
		}))
	}
	var sum atomic.Int64
	for c := 0; c < consumers; c++ {
		workers = append(workers, threads.ForkNamed(fmt.Sprintf("consumer-%d", c), func() {
			for consumed.Add(1) <= producers*perProd {
				sum.Add(int64(b.get()))
			}
		}))
	}
	total := producers * perProd
	for _, w := range workers[:producers] {
		threads.Join(w)
	}
	// All items produced; consumers will drain and stop via the counter.
	for _, w := range workers[producers:] {
		threads.Join(w)
	}

	wantSum := int64(total) * int64(total-1) / 2
	fmt.Printf("produced %d items, checksum %d (want %d, match=%v)\n",
		produced.Load(), sum.Load(), wantSum, sum.Load() == wantSum)

	s := threads.SnapshotStats()
	fmt.Printf("acquire fast/nub: %d/%d  release fast/nub: %d/%d\n",
		s.AcquireFast, s.AcquireNub, s.ReleaseFast, s.ReleaseNub)
	fmt.Printf("waits: %d (parked %d, elided %d)  signals: fast %d, nub %d\n",
		s.WaitCount, s.WaitPark, s.WaitElided, s.SignalFast, s.SignalNub)
}
