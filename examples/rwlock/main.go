// Readers-writer lock built from a Mutex and one Condition — the paper's
// motivating example for Broadcast: "Broadcast is necessary (for
// correctness) if multiple threads should resume (for example, when
// releasing a 'writer' lock on a file might permit all 'readers' to
// resume)." Because readers and writers wait for different predicates on
// the same condition variable, Signal would be incorrect here.
package main

import (
	"fmt"
	"sync/atomic"

	"threads"
)

// RWLock is a writers-preferring readers-writer lock.
type RWLock struct {
	mu             threads.Mutex //threads:guards readers,writing,waitingWriters
	changed        threads.Condition
	readers        int
	writing        bool
	waitingWriters int
}

// RLock acquires shared access.
func (l *RWLock) RLock() {
	l.mu.Acquire()
	for l.writing || l.waitingWriters > 0 {
		l.changed.Wait(&l.mu)
	}
	l.readers++
	l.mu.Release()
}

// RUnlock releases shared access.
func (l *RWLock) RUnlock() {
	l.mu.Acquire()
	l.readers--
	last := l.readers == 0
	l.mu.Release()
	if last {
		// The last reader leaving may allow one writer to proceed —
		// different waiters wait for different predicates, so Broadcast.
		l.changed.Broadcast()
	}
}

// Lock acquires exclusive access.
func (l *RWLock) Lock() {
	l.mu.Acquire()
	l.waitingWriters++
	for l.writing || l.readers > 0 {
		l.changed.Wait(&l.mu)
	}
	l.waitingWriters--
	l.writing = true
	l.mu.Release()
}

// Unlock releases exclusive access: all readers may resume.
func (l *RWLock) Unlock() {
	l.mu.Acquire()
	l.writing = false
	l.mu.Release()
	l.changed.Broadcast()
}

func main() {
	var (
		lock  RWLock
		data  [3]int64 // protected: all cells always equal
		races atomic.Int64
		reads atomic.Int64
	)
	const (
		readerThreads = 6
		writerThreads = 2
		opsPerThread  = 3000
	)
	var workers []*threads.Thread
	for r := 0; r < readerThreads; r++ {
		workers = append(workers, threads.Fork(func() {
			for i := 0; i < opsPerThread; i++ {
				lock.RLock()
				a, b, c := data[0], data[1], data[2]
				if a != b || b != c {
					races.Add(1) // torn read: exclusion broken
				}
				lock.RUnlock()
				reads.Add(1)
			}
		}))
	}
	for w := 0; w < writerThreads; w++ {
		workers = append(workers, threads.Fork(func() {
			for i := 0; i < opsPerThread; i++ {
				lock.Lock()
				v := data[0] + 1
				data[0], data[1], data[2] = v, v, v
				lock.Unlock()
			}
		}))
	}
	for _, w := range workers {
		threads.Join(w)
	}
	fmt.Printf("reads: %d, torn reads: %d, final value: %d (want %d)\n",
		reads.Load(), races.Load(), data[0], writerThreads*opsPerThread)
	if races.Load() == 0 && data[0] == writerThreads*opsPerThread {
		fmt.Println("readers-writer lock behaved correctly")
	}
}
