// Benchmarks, one group per experiment in EXPERIMENTS.md. They are the
// testing.B counterparts of cmd/threadsbench: E1–E13 each get a micro- or
// macro-benchmark whose custom metrics reproduce the paper's claims (for
// example, sim-instructions/op for E1, fastpath fraction for E2) or guard
// the contended-path properties (zero allocations per park, E11–E13).
package threads_test

import (
	"sync"
	"testing"
	"time"

	"threads"
	"threads/internal/baselines"
	"threads/internal/bench"
	"threads/internal/checker"
	"threads/internal/sim"
	"threads/internal/simthreads"
	"threads/internal/spec"
	"threads/internal/trace"
	"threads/internal/workload"
)

// ---------------------------------------------------------------------------
// E1 — uncontended fast path.
// ---------------------------------------------------------------------------

func BenchmarkE1_AcquireRelease(b *testing.B) {
	var m threads.Mutex
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Acquire()
		m.Release()
	}
	reportSimPair(b, "mutex")
}

func BenchmarkE1_PV(b *testing.B) {
	var s threads.Semaphore
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.P()
		s.V()
	}
	reportSimPair(b, "sem")
}

func BenchmarkE1_GoSyncMutexBaseline(b *testing.B) {
	var m sync.Mutex
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Lock()
		m.Unlock()
	}
}

// reportSimPair attaches the simulated-Firefly instruction count of the
// uncontended pair as a custom metric (the paper's 5 instructions / 10 µs).
func reportSimPair(b *testing.B, kind string) {
	w, k := simthreads.NewWorld(sim.Config{Procs: 1})
	var pair uint64
	k.Spawn("solo", func(e *sim.Env) {
		var enter, leave func(*sim.Env)
		if kind == "mutex" {
			m := w.NewMutex()
			enter, leave = m.Acquire, m.Release
		} else {
			s := w.NewSemaphore()
			enter, leave = s.P, s.V
		}
		before := e.Instret()
		enter(e)
		leave(e)
		pair = e.Instret() - before
	})
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(pair), "sim-instr/pair")
	b.ReportMetric(float64(pair)*sim.MicroVAXII().MicrosPerInstr, "sim-µs/pair")
}

// ---------------------------------------------------------------------------
// E2 — fast-path rate under contention.
// ---------------------------------------------------------------------------

func BenchmarkE2_ContendedAcquireRelease(b *testing.B) {
	defer threads.EnableStats(threads.EnableStats(true))
	threads.ResetStats()
	var m threads.Mutex
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			m.Acquire()
			m.Release()
		}
	})
	s := threads.SnapshotStats()
	// Spin wins count toward the fast path: they resolve in user space
	// without a Nub (kernel) entry, which is what the fraction measures.
	fast := s.AcquireFast + s.AcquireSpin
	total := fast + s.AcquireNub
	if total > 0 {
		b.ReportMetric(float64(fast)/float64(total), "fastpath-frac")
		b.ReportMetric(float64(s.AcquirePark)/float64(total), "parks/op")
		b.ReportMetric(float64(s.AcquireBackout)/float64(total), "backouts/op")
	}
}

func BenchmarkE2_SimContentionSweep(b *testing.B) {
	// One simulated contended run per iteration; the metric of record is
	// the fast-path rate at 8 threads on 5 processors.
	var rate float64
	for i := 0; i < b.N; i++ {
		res, err := workload.SimMutexContention(workload.SimContentionConfig{
			Procs: 5, Threads: 8, Iters: 50, CSWork: 20, Think: 200, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		rate = res.FastPathRate()
	}
	b.ReportMetric(rate, "fastpath-frac")
}

// ---------------------------------------------------------------------------
// E3 — Signal with racing waiters.
// ---------------------------------------------------------------------------

func BenchmarkE3_SignalRacingWaiters(b *testing.B) {
	multi := 0
	for i := 0; i < b.N; i++ {
		w, k := simthreads.NewWorld(sim.Config{
			Procs: 4, Seed: int64(i), Policy: sim.PolicyRandom, MaxSteps: 3_000_000,
		})
		m := w.NewMutex()
		c := w.NewCondition()
		var ready, done sim.Word
		const waiters = 4
		for j := 0; j < waiters; j++ {
			k.Spawn("w", func(e *sim.Env) {
				m.Acquire(e)
				for e.Load(&ready) == 0 {
					c.Wait(e, m)
				}
				m.Release(e)
				e.Add(&done, 1)
			})
		}
		signals := 0
		k.Spawn("d", func(e *sim.Env) {
			e.Work(50)
			m.Acquire(e)
			e.Store(&ready, 1)
			m.Release(e)
			for e.Load(&done) != waiters {
				c.Signal(e)
				signals++
				e.Work(100)
			}
		})
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
		if signals < waiters {
			multi++
		}
	}
	b.ReportMetric(float64(multi)/float64(b.N), "multi-unblock-frac")
}

// ---------------------------------------------------------------------------
// E4 — wakeup-waiting race.
// ---------------------------------------------------------------------------

func BenchmarkE4_EventcountHandshake(b *testing.B) {
	lost := 0
	for i := 0; i < b.N; i++ {
		if workload.RunLostWakeupTrial(workload.LostWakeupTrial{
			Seed: int64(i), Procs: 2, Waiters: 2, UseEventcount: true,
		}) {
			lost++
		}
	}
	b.ReportMetric(float64(lost)/float64(b.N), "lost-wakeup-frac")
}

func BenchmarkE4_NaiveHandshake(b *testing.B) {
	lost := 0
	for i := 0; i < b.N; i++ {
		if workload.RunLostWakeupTrial(workload.LostWakeupTrial{
			Seed: int64(i), Procs: 2, Waiters: 2, UseEventcount: false,
		}) {
			lost++
		}
	}
	b.ReportMetric(float64(lost)/float64(b.N), "lost-wakeup-frac")
}

// ---------------------------------------------------------------------------
// E5 — Broadcast.
// ---------------------------------------------------------------------------

func BenchmarkE5_BroadcastNWaiters(b *testing.B) {
	const waiters = 8
	var (
		m    threads.Mutex
		c    threads.Condition
		gen  int
		wg   sync.WaitGroup
		stop bool
	)
	wg.Add(waiters)
	for i := 0; i < waiters; i++ {
		threads.Fork(func() {
			defer wg.Done()
			m.Acquire()
			last := gen
			for !stop {
				for gen == last && !stop {
					c.Wait(&m)
				}
				last = gen
			}
			m.Release()
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Acquire()
		gen++
		m.Release()
		c.Broadcast()
	}
	b.StopTimer()
	m.Acquire()
	stop = true
	m.Release()
	c.Broadcast()
	wg.Wait()
}

// ---------------------------------------------------------------------------
// E6 — Mesa vs Hoare producer-consumer.
// ---------------------------------------------------------------------------

func benchPC(b *testing.B, mk func() baselines.Monitor) {
	b.ReportAllocs()
	var spurious float64
	for i := 0; i < b.N; i++ {
		res := workload.ProducerConsumer(mk(), workload.PCConfig{
			Producers: 2, Consumers: 2, ItemsPerProducer: 500, Capacity: 4, Work: 30,
		})
		spurious = res.SpuriousRate()
	}
	b.ReportMetric(spurious, "spurious-frac")
	b.ReportMetric(1000, "items/op") // fixed items per iteration, for ns/item math
}

func BenchmarkE6_ProdCons_Threads(b *testing.B) {
	benchPC(b, func() baselines.Monitor { return baselines.NewThreadsMonitor() })
}

func BenchmarkE6_ProdCons_Hoare(b *testing.B) {
	benchPC(b, func() baselines.Monitor { return baselines.NewHoareMonitor() })
}

func BenchmarkE6_ProdCons_GoSync(b *testing.B) {
	benchPC(b, func() baselines.Monitor { return baselines.NewNativeMonitor() })
}

// ---------------------------------------------------------------------------
// E7 — model checking.
// ---------------------------------------------------------------------------

func BenchmarkE7_ModelCheckAlertWait(b *testing.B) {
	var states int
	for i := 0; i < b.N; i++ {
		res := checker.Run(checker.SignalAbsorbedByDepartedThread(spec.VariantFinal))
		if res.Violation != nil {
			b.Fatal("final variant violated")
		}
		states = res.States
	}
	b.ReportMetric(float64(states), "states/run")
}

// ---------------------------------------------------------------------------
// E8 — Signal/Alert race.
// ---------------------------------------------------------------------------

func BenchmarkE8_SignalAlertRace(b *testing.B) {
	alerted := 0
	for i := 0; i < b.N; i++ {
		var (
			m threads.Mutex
			c threads.Condition
		)
		errCh := make(chan error, 1)
		th := threads.Fork(func() {
			m.Acquire()
			err := c.AlertWait(&m)
			m.Release()
			errCh <- err
		})
		for c.Waiters() == 0 {
			time.Sleep(20 * time.Microsecond)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		// Alternate the launch order: the runtime runs the most recent
		// goroutine first, and the implementation may resolve the
		// overlap either way.
		ops := []func(){func() { c.Signal() }, func() { threads.Alert(th) }}
		if i%2 == 0 {
			ops[0], ops[1] = ops[1], ops[0]
		}
		for _, op := range ops {
			op := op
			go func() { defer wg.Done(); op() }()
		}
		wg.Wait()
		if <-errCh != nil {
			alerted++
		}
		threads.Join(th)
	}
	b.ReportMetric(float64(alerted)/float64(b.N), "alerted-frac")
}

// ---------------------------------------------------------------------------
// E9 — trace conformance throughput.
// ---------------------------------------------------------------------------

func BenchmarkE9_TraceConformance(b *testing.B) {
	// Record one traced producer-consumer run, then measure replay cost.
	var events []trace.Event
	cfg := sim.Config{
		Procs: 4, Seed: 7, Policy: sim.PolicyRandom, MaxSteps: 5_000_000,
		Trace: func(ev sim.Event) {
			if a, ok := ev.Payload.(spec.Action); ok {
				events = append(events, trace.Event{Seq: ev.Seq, Action: a})
			}
		},
	}
	w, k := simthreads.NewWorld(cfg)
	m := w.NewMutex()
	c := w.NewCondition()
	var queue, consumed sim.Word
	const total = 60
	for i := 0; i < 2; i++ {
		k.Spawn("p", func(e *sim.Env) {
			for n := 0; n < total/2; n++ {
				m.Acquire(e)
				e.Add(&queue, 1)
				m.Release(e)
				c.Signal(e)
			}
		})
		k.Spawn("c", func(e *sim.Env) {
			for {
				m.Acquire(e)
				for e.Load(&queue) == 0 {
					if e.Load(&consumed) >= total {
						m.Release(e)
						c.Broadcast(e)
						return
					}
					c.Wait(e, m)
				}
				e.Add(&queue, ^uint64(0))
				n := e.Add(&consumed, 1)
				m.Release(e)
				if n >= total {
					c.Broadcast(e)
					return
				}
			}
		})
	}
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.CheckAll(events); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(events)), "events/replay")
}

// ---------------------------------------------------------------------------
// E10 — throughput vs baselines.
// ---------------------------------------------------------------------------

func benchContention(b *testing.B, mk func() baselines.Monitor, thr int) {
	for i := 0; i < b.N; i++ {
		workload.MutexContention(mk(), workload.ContentionConfig{
			Threads: thr, Iters: 2000 / thr, CSWork: 20, Think: 100,
		})
	}
	b.ReportMetric(2000, "lockops/op")
}

func BenchmarkE10_Contention4_Threads(b *testing.B) {
	benchContention(b, func() baselines.Monitor { return baselines.NewThreadsMonitor() }, 4)
}

func BenchmarkE10_Contention4_Hoare(b *testing.B) {
	benchContention(b, func() baselines.Monitor { return baselines.NewHoareMonitor() }, 4)
}

func BenchmarkE10_Contention4_GoSync(b *testing.B) {
	benchContention(b, func() baselines.Monitor { return baselines.NewNativeMonitor() }, 4)
}

func BenchmarkE10_SimProdConsScaling(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		r1, err := workload.SimProducerConsumer(workload.SimPCConfig{
			Procs: 1, Producers: 4, Consumers: 4, ItemsPerProducer: 15,
			Capacity: 8, Work: 400, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		r4, err := workload.SimProducerConsumer(workload.SimPCConfig{
			Procs: 4, Producers: 4, Consumers: 4, ItemsPerProducer: 15,
			Capacity: 8, Work: 400, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		speedup = r1.Micros / r4.Micros
	}
	b.ReportMetric(speedup, "speedup-4proc")
}

// ---------------------------------------------------------------------------
// E11 — contended Acquire/Release ladder.
// ---------------------------------------------------------------------------

func benchLadder(b *testing.B, n int) {
	defer threads.EnableStats(threads.EnableStats(true))
	threads.ResetStats()
	b.ReportAllocs()
	bench.RunLadder(n, b.N)
	s := threads.SnapshotStats()
	fast := s.AcquireFast + s.AcquireSpin
	if total := fast + s.AcquireNub; total > 0 {
		b.ReportMetric(float64(fast)/float64(total), "fastpath-frac")
		b.ReportMetric(float64(s.AcquirePark)/float64(total), "parks/op")
	}
}

func BenchmarkE11_Ladder2(b *testing.B) { benchLadder(b, 2) }
func BenchmarkE11_Ladder4(b *testing.B) { benchLadder(b, 4) }
func BenchmarkE11_Ladder8(b *testing.B) { benchLadder(b, 8) }

// ---------------------------------------------------------------------------
// E12 — Signal/Broadcast storm.
// ---------------------------------------------------------------------------

func benchStorm(b *testing.B, waiters int) {
	b.ReportAllocs()
	bench.RunSignalStorm(waiters, b.N)
}

func BenchmarkE12_Storm4(b *testing.B) { benchStorm(b, 4) }
func BenchmarkE12_Storm8(b *testing.B) { benchStorm(b, 8) }

// ---------------------------------------------------------------------------
// E13 — AlertP under contention.
// ---------------------------------------------------------------------------

func BenchmarkE13_AlertPStorm(b *testing.B) {
	b.ReportAllocs()
	alerted := bench.RunAlertPStorm(8, b.N)
	b.ReportMetric(float64(alerted)/float64(b.N), "alerted-frac")
}

// ---------------------------------------------------------------------------
// E18 — deadline plumbing overhead (timer wheel vs time.AfterFunc + Alert).
// ---------------------------------------------------------------------------

// The cancel path is the one every successful deadline wait pays: arm a
// wheel entry, perform the wait, cancel-and-drain on the way out. The
// entry is cached per thread, so the steady state must not allocate.

func BenchmarkE18_AcquireDeadlineUncontended(b *testing.B) {
	b.ReportAllocs()
	var m threads.Mutex
	deadline := time.Now().Add(time.Hour)
	for i := 0; i < b.N; i++ {
		if err := m.AcquireDeadline(deadline); err != nil {
			b.Fatal(err)
		}
		m.Release()
	}
}

func BenchmarkE18_AlertPDeadlineUncontended(b *testing.B) {
	b.ReportAllocs()
	var s threads.Semaphore
	deadline := time.Now().Add(time.Hour)
	for i := 0; i < b.N; i++ {
		s.V()
		if err := s.AlertPDeadline(deadline); err != nil {
			b.Fatal(err)
		}
	}
}

// The hand-rolled pattern the deadline variants replace, done correctly:
// time.AfterFunc arms a runtime timer whose callback Alerts the waiter,
// and the epilogue stops the timer and spin-drains if the stop lost. This
// is the E18 baseline — same semantics, one heap-allocated timer per
// operation.
func BenchmarkE18_AfterFuncAlertBaseline(b *testing.B) {
	b.ReportAllocs()
	var m threads.Mutex
	self := threads.Self()
	for i := 0; i < b.N; i++ {
		timer := time.AfterFunc(time.Hour, func() { defer threads.Detach(); threads.Alert(self) })
		m.Acquire()
		m.Release()
		if !timer.Stop() {
			for !threads.TestAlert() {
			}
		}
	}
}

// The fire path in aggregate: waiters whose deadlines all expire, so every
// op crosses the wheel runner, an Alert delivery and the drain epilogue.
func BenchmarkE18_DeadlineExpires(b *testing.B) {
	b.ReportAllocs()
	// The paper's binary semaphore is INITIALLY available, so the zero
	// value carries one token; consume it so that — with no V anywhere —
	// every wait below genuinely times out.
	var s threads.Semaphore
	s.P()
	for i := 0; i < b.N; i++ {
		if err := s.AlertPDeadline(time.Now().Add(50 * time.Microsecond)); err != threads.DeadlineExceeded {
			b.Fatalf("AlertPDeadline = %v, want DeadlineExceeded", err)
		}
	}
}

// BenchmarkExperimentTables runs the full quick experiment suite once per
// iteration — a one-stop regeneration of every table (used with -benchtime
// 1x in CI and by the committed bench_output.txt).
func BenchmarkExperimentTables(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, e := range bench.All() {
			e.Run(bench.Options{Quick: true})
		}
	}
}

// ---------------------------------------------------------------------------
// E20 — the static-analysis gate itself.
// ---------------------------------------------------------------------------

// BenchmarkThreadsvetRepo runs full-repo threadsvet (every analyzer, one
// cross-package program) per iteration: load, type-check, summaries,
// entry-held fixpoint, guard inference, all checkers. The wall clock here
// is what every commit pays in CI; the e20.vet_ms baseline metric tracks
// the same quantity.
func BenchmarkThreadsvetRepo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pkgs, findings, err := bench.RunThreadsvetRepo()
		if err != nil {
			b.Fatal(err)
		}
		if findings != 0 {
			b.Fatalf("threadsvet reported %d findings over %d packages", findings, pkgs)
		}
	}
}
