package threads_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"threads"
)

// These tests exercise the public API exactly as a client program would,
// complementing the white-box tests in internal/core.

func TestPublicQuickstartPattern(t *testing.T) {
	var (
		m     threads.Mutex
		c     threads.Condition
		queue []int
	)
	const items = 100
	consumer := threads.Fork(func() {
		for got := 0; got < items; {
			m.Acquire()
			for len(queue) == 0 {
				c.Wait(&m)
			}
			queue = queue[1:]
			got++
			m.Release()
		}
	})
	for i := 0; i < items; i++ {
		threads.Lock(&m, func() { queue = append(queue, i) })
		c.Signal()
	}
	done := make(chan struct{})
	go func() { threads.Join(consumer); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("consumer never finished")
	}
}

func TestPublicAlertTimeout(t *testing.T) {
	var (
		m threads.Mutex
		c threads.Condition
	)
	result := make(chan error, 1)
	worker := threads.Fork(func() {
		m.Acquire()
		err := c.AlertWait(&m) // no one will ever signal
		m.Release()
		result <- err
	})
	time.Sleep(10 * time.Millisecond)
	threads.Alert(worker) // the timeout fires
	threads.Join(worker)
	if err := <-result; !errors.Is(err, threads.Alerted) {
		t.Fatalf("timed-out wait returned %v, want threads.Alerted", err)
	}
}

func TestPublicSemaphoreHandoff(t *testing.T) {
	var sem threads.Semaphore
	sem.P()
	var got bool
	worker := threads.Fork(func() {
		sem.P()
		got = true
	})
	sem.V()
	threads.Join(worker)
	if !got {
		t.Fatal("P never completed after V")
	}
}

func TestPublicStatsRoundTrip(t *testing.T) {
	defer threads.EnableStats(threads.EnableStats(true))
	threads.ResetStats()
	var m threads.Mutex
	m.Acquire()
	m.Release()
	if s := threads.SnapshotStats(); s.AcquireFast != 1 {
		t.Fatalf("AcquireFast = %d, want 1", s.AcquireFast)
	}
	threads.ResetStats()
	if s := threads.SnapshotStats(); s.AcquireFast != 0 {
		t.Fatal("ResetStats did not zero the counters")
	}
}

func TestPublicSelfAndAlertPending(t *testing.T) {
	self := threads.Self()
	if self == nil {
		t.Fatal("Self returned nil")
	}
	if threads.AlertPending(self) {
		t.Fatal("fresh thread has a pending alert")
	}
	threads.Alert(self)
	if !threads.AlertPending(self) {
		t.Fatal("Alert did not set the pending flag")
	}
	if !threads.TestAlert() {
		t.Fatal("TestAlert did not observe the alert")
	}
}

func TestPublicBroadcastReadersWriters(t *testing.T) {
	// The paper's motivating Broadcast example: releasing a writer lock
	// permits all readers to resume.
	var (
		m       threads.Mutex
		cond    threads.Condition
		writing = true
		readers sync.WaitGroup
	)
	const n = 8
	readers.Add(n)
	for i := 0; i < n; i++ {
		threads.Fork(func() {
			defer readers.Done()
			m.Acquire()
			for writing {
				cond.Wait(&m)
			}
			m.Release()
		})
	}
	time.Sleep(20 * time.Millisecond)
	threads.Lock(&m, func() { writing = false })
	cond.Broadcast()
	done := make(chan struct{})
	go func() { readers.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Broadcast did not release all readers")
	}
}

func TestPublicRemainingSurface(t *testing.T) {
	// ForkNamed, Detach, SetChecking round-trips.
	th := threads.ForkNamed("surface-worker", func() {})
	threads.Join(th)
	if th.Name() != "surface-worker" {
		t.Fatalf("Name = %q", th.Name())
	}
	prev := threads.SetChecking(true)
	threads.SetChecking(prev)
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = threads.Self() // adopt
		threads.Detach()
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("detach goroutine hung")
	}
	// Semaphore TryP and AlertP surface.
	var s threads.Semaphore
	if !s.TryP() {
		t.Fatal("TryP failed on available semaphore")
	}
	s.V()
	if err := s.AlertP(); err != nil {
		t.Fatalf("AlertP on available semaphore: %v", err)
	}
	s.V()
	// Mutex TryAcquire surface.
	var m threads.Mutex
	if !m.TryAcquire() || m.Waiters() != 0 {
		t.Fatal("TryAcquire surface broken")
	}
	m.Release()
}
