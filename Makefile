# Development targets. `make tier1` is the gate every change must pass:
# build, vet, the core package under the race detector, and the full suite.

GO ?= go

.PHONY: tier1 build vet test race bench bench-baseline bench-check

tier1: build vet race test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/core/...

test:
	$(GO) test ./...

bench:
	$(GO) test -run xxx -bench . -benchmem .

# bench-baseline regenerates the committed regression baseline; run it only
# when a change intentionally moves a metric, and commit the new file.
bench-baseline:
	$(GO) run ./cmd/threadsbench -json BENCH_1.json

# bench-check compares the current build against the committed baseline on
# the machine-independent metrics (add -timed manually for same-machine
# wall-clock comparisons).
bench-check:
	$(GO) run ./cmd/threadsbench -baseline BENCH_1.json
