# Development targets. `make tier1` is the gate every change must pass:
# build, vet, the core package under the race detector, and the full suite.

GO ?= go

.PHONY: tier1 build vet test race bench bench-baseline bench-check conformance

tier1: build vet race test conformance

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/core/...

test:
	$(GO) test ./...

# conformance replays linearization-point traces of the real runtime through
# the specification's state machine: the trace/core conformance tests under
# the race detector, then a larger un-instrumented replay via threadscheck.
conformance:
	$(GO) test -race -run 'TestRuntimeConformance|TestClaimRace|TestTraceStamp' ./internal/trace ./internal/core
	$(GO) run ./cmd/threadscheck -runtime -events 300000

bench:
	$(GO) test -run xxx -bench . -benchmem .

# bench-baseline regenerates the committed regression baseline; run it only
# when a change intentionally moves a metric, and commit the new file.
bench-baseline:
	$(GO) run ./cmd/threadsbench -json BENCH_1.json

# bench-check compares the current build against the committed baseline on
# the machine-independent metrics (add -timed manually for same-machine
# wall-clock comparisons).
bench-check:
	$(GO) run ./cmd/threadsbench -baseline BENCH_1.json
