# Development targets. `make tier1` is the gate every change must pass:
# build, vet, the core package under the race detector, and the full suite.

GO ?= go

.PHONY: tier1 build examples vet test race bench bench-baseline bench-check sweep sweep-baseline conformance lint threadsvet explore fuzz

tier1: build examples vet race test conformance threadsvet

build:
	$(GO) build ./...

# examples must always compile (go build ./... covers them, but a separate
# target keeps the failure attributable when one rots).
examples:
	$(GO) build ./examples/...

vet:
	$(GO) vet ./...

# threadsvet runs the repo's own static usage-discipline analyzers
# (internal/analysis) over every package; see README "Static analysis".
THREADSVET_FLAGS ?=
threadsvet:
	$(GO) run ./cmd/threadsvet $(THREADSVET_FLAGS) ./...

race:
	$(GO) test -race ./internal/core/... ./internal/spinlock/...

test:
	$(GO) test ./...

# conformance replays linearization-point traces of the real runtime through
# the specification's state machine: the trace/core conformance tests under
# the race detector, then a larger un-instrumented replay via threadscheck.
conformance:
	$(GO) test -race -run 'TestRuntimeConformance|TestClaimRace|TestTraceStamp' ./internal/trace ./internal/core
	$(GO) run ./cmd/threadscheck -runtime -events 300000

# lint gates on formatting and static analysis: gofmt must report nothing,
# go vet and threadsvet must pass, and staticcheck runs when installed (CI
# and dev images without it still get the rest).
lint: threadsvet
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt: the following files need formatting:"; \
		echo "$$unformatted"; \
		exit 1; \
	fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipped"; \
	fi

# explore is the CI-sized schedule-space sweep: every litmus program,
# all schedules with at most EXPLORE_K preemptions, hard wall-clock cap.
# Failing schedules are written to $(CERT_DIR) as replayable certificates.
# EXPLORE_POR toggles sleep-set reduction, EXPLORE_WORKERS sizes the
# parallel frontier, and a non-empty EXPLORE_STATECACHE names a directory
# of persistent fingerprint snapshots to resume from (the nightly job
# caches it across runs).
EXPLORE_K ?= 1
EXPLORE_BUDGET ?= 90s
EXPLORE_POR ?= sleepsets
EXPLORE_WORKERS ?= $(shell nproc 2>/dev/null || echo 2)
EXPLORE_STATECACHE ?=
CERT_DIR ?= certs
explore:
	$(GO) run ./cmd/threadsim -explore -maxk $(EXPLORE_K) -budget $(EXPLORE_BUDGET) \
		-por $(EXPLORE_POR) -workers $(EXPLORE_WORKERS) \
		$(if $(EXPLORE_STATECACHE),-statecache $(EXPLORE_STATECACHE)) -cert $(CERT_DIR)

# fuzz samples weighted-random schedules beyond the exhaustive bound.
FUZZ_RUNS ?= 2000
fuzz:
	$(GO) run ./cmd/threadsim -fuzz -runs $(FUZZ_RUNS) -cert $(CERT_DIR)

bench:
	$(GO) test -run xxx -bench . -benchmem .

# bench-baseline regenerates the committed regression baseline; run it only
# when a change intentionally moves a metric, and commit the new file.
bench-baseline:
	$(GO) run ./cmd/threadsbench -json BENCH_1.json

# bench-check compares the current build against the committed baseline on
# the machine-independent metrics (add -timed manually for same-machine
# wall-clock comparisons).
bench-check:
	$(GO) run ./cmd/threadsbench -baseline BENCH_1.json

# sweep runs the core-count scaling sweep (E11–E13 across GOMAXPROCS) and
# enforces the committed curves' shape; bench/sweep.sh is the matrix runner
# with pinning and environment control. SWEEP_FLAGS adds e.g. -timed for
# same-machine comparisons or -cores/-samples overrides.
SWEEP_FLAGS ?=
sweep:
	$(GO) run ./cmd/threadsbench -sweep -baseline BENCH_2.json $(SWEEP_FLAGS)

# sweep-baseline regenerates the committed curve baseline; run it only when
# a change intentionally moves a curve, and commit the new file.
sweep-baseline:
	$(GO) run ./cmd/threadsbench -sweep -json BENCH_2.json $(SWEEP_FLAGS)
