package threads_test

import (
	"errors"
	"fmt"
	"time"

	"threads"
)

// The basic monitor pattern: a mutex-protected predicate, a condition
// variable, and the re-check loop (return from Wait is only a hint).
func Example() {
	var (
		mu    threads.Mutex
		ready threads.Condition
		value string
		done  bool
	)
	worker := threads.Fork(func() {
		mu.Acquire()
		for !done {
			ready.Wait(&mu)
		}
		fmt.Println("worker saw:", value)
		mu.Release()
	})
	threads.Lock(&mu, func() {
		value = "hello"
		done = true
	})
	ready.Signal()
	threads.Join(worker)
	// Output: worker saw: hello
}

// Lock is the Modula-2+ LOCK m DO ... END construct: Release always runs,
// even on panic.
func ExampleLock() {
	var mu threads.Mutex
	func() {
		defer func() { recover() }()
		threads.Lock(&mu, func() {
			panic("exception inside the critical section")
		})
	}()
	// The mutex was released by Lock's FINALLY semantics:
	fmt.Println("held after panic:", mu.Held())
	// Output: held after panic: false
}

// Semaphores need no holder and no textual pairing of P and V: one thread
// waits, another (here standing in for an interrupt routine) posts.
func ExampleSemaphore() {
	var sem threads.Semaphore
	sem.P() // drain the initial availability; the next P waits
	done := make(chan struct{})
	handler := threads.Fork(func() {
		sem.P() // waits for the "interrupt"
		fmt.Println("interrupt handled")
		close(done)
	})
	sem.V() // the interrupt routine: never blocks
	<-done
	threads.Join(handler)
	// Output: interrupt handled
}

// Alert implements timeouts politely: the timer holds only the thread
// handle and need not know which condition the thread is blocked on.
func ExampleAlert() {
	var (
		mu    threads.Mutex
		reply threads.Condition
	)
	worker := threads.Fork(func() {
		mu.Acquire()
		err := reply.AlertWait(&mu) // nothing will ever signal this
		mu.Release()
		if errors.Is(err, threads.Alerted) {
			fmt.Println("timed out")
		}
	})
	time.Sleep(5 * time.Millisecond)
	threads.Alert(worker) // the timeout fires
	threads.Join(worker)
	// Output: timed out
}

// TestAlert polls for a pending alert at a cancellation point.
func ExampleTestAlert() {
	worker := threads.Fork(func() {
		for i := 0; ; i++ {
			if threads.TestAlert() {
				fmt.Println("aborted politely")
				return
			}
			time.Sleep(time.Millisecond)
		}
	})
	time.Sleep(5 * time.Millisecond)
	threads.Alert(worker)
	threads.Join(worker)
	// Output: aborted politely
}

// Broadcast releases every waiter — required when waiters wait for
// different predicates, as when releasing a writer lock frees all readers.
func ExampleCondition_Broadcast() {
	var (
		mu      threads.Mutex
		cond    threads.Condition
		writing = true
	)
	readers := make([]*threads.Thread, 3)
	for i := range readers {
		readers[i] = threads.Fork(func() {
			mu.Acquire()
			for writing {
				cond.Wait(&mu)
			}
			mu.Release()
		})
	}
	time.Sleep(5 * time.Millisecond)
	threads.Lock(&mu, func() { writing = false })
	cond.Broadcast()
	for _, r := range readers {
		threads.Join(r)
	}
	fmt.Println("all readers resumed")
	// Output: all readers resumed
}
