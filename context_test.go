package threads_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"threads"
)

func TestWithContextCancel(t *testing.T) {
	var (
		m threads.Mutex
		c threads.Condition
	)
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	threads.Fork(func() {
		m.Acquire()
		defer m.Release()
		errCh <- threads.WithContext(ctx, func() error {
			return c.AlertWait(&m)
		})
	})
	deadline := time.Now().Add(5 * time.Second)
	for c.Waiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("thread never blocked")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("WithContext after cancel returned %v, want context.Canceled", err)
	}
}

func TestWithContextDeadline(t *testing.T) {
	var (
		m threads.Mutex
		c threads.Condition
	)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	errCh := make(chan error, 1)
	threads.Fork(func() {
		m.Acquire()
		defer m.Release()
		errCh <- threads.WithContext(ctx, func() error {
			return c.AlertWait(&m)
		})
	})
	if err := <-errCh; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WithContext after timeout returned %v, want context.DeadlineExceeded", err)
	}
}

func TestWithContextAlreadyDone(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := threads.WithContext(ctx, func() error {
		ran = true
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("WithContext on done context returned %v", err)
	}
	if ran {
		t.Fatal("body ran despite done context")
	}
}

func TestWithContextNormalCompletion(t *testing.T) {
	var (
		m threads.Mutex
		c threads.Condition
	)
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 2)
	th := threads.Fork(func() {
		m.Acquire()
		errCh <- threads.WithContext(ctx, func() error {
			return c.AlertWait(&m)
		})
		// The context fires after completion; a stale alert leaking out of
		// WithContext would poison this second wait.
		errCh <- c.AlertWait(&m)
		m.Release()
	})
	deadline := time.Now().Add(5 * time.Second)
	for c.Waiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first wait never blocked")
		}
		time.Sleep(time.Millisecond)
	}
	c.Signal()
	if err := <-errCh; err != nil {
		t.Fatalf("satisfied WithContext returned %v, want nil", err)
	}
	cancel() // fires after the first wait completed; must have been stopped
	for c.Waiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second wait never blocked")
		}
		time.Sleep(time.Millisecond)
	}
	c.Signal()
	if err := <-errCh; err != nil {
		t.Fatalf("second wait returned %v, want nil: context alert leaked past stop", err)
	}
	threads.Join(th)
}

// TestAlertOnDoneStopDrains loses the completion/cancel race on purpose:
// the context is cancelled after the wait completed but before stop runs,
// so the alert has been delivered and stop must drain it.
func TestAlertOnDoneStopDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	threads.Fork(func() {
		defer close(done)
		self := threads.Self()
		stop := threads.AlertOnDone(ctx, self)
		cancel() // fire while "completed": delivery lands as a pending alert
		for !threads.AlertPending(self) {
			time.Sleep(time.Millisecond)
		}
		if fired := stop(); !fired {
			t.Error("stop reported not-fired after the context alert was delivered")
		}
		if threads.AlertPending(self) {
			t.Error("stop did not drain the delivered context alert")
		}
		if fired := stop(); fired {
			t.Error("second stop call reported fired")
		}
	})
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("AlertOnDone stop never returned")
	}
}

func TestWithContextUserAlertPassesThrough(t *testing.T) {
	var (
		m threads.Mutex
		c threads.Condition
	)
	ctx := context.Background()
	errCh := make(chan error, 1)
	th := threads.Fork(func() {
		m.Acquire()
		defer m.Release()
		errCh <- threads.WithContext(ctx, func() error {
			return c.AlertWait(&m)
		})
	})
	deadline := time.Now().Add(5 * time.Second)
	for c.Waiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("thread never blocked")
		}
		time.Sleep(time.Millisecond)
	}
	threads.Alert(th)
	if err := <-errCh; !errors.Is(err, threads.Alerted) {
		t.Fatalf("user-alerted WithContext returned %v, want Alerted", err)
	}
}
